open Hwf_sim
open Hwf_adversary
open Hwf_workload

(* The model checker, the stagger adversary and the bivalence prober. *)

let fig3 ~quantum ~pris =
  Scenarios.consensus ~name:"f3" ~impl:Scenarios.Fig3 ~quantum
    ~layout:(List.map (fun p -> (0, p)) pris)

let test_explore_finds_fig3_bug () =
  let b = fig3 ~quantum:1 ~pris:[ 1; 1 ] in
  let o = Explore.explore b.scenario in
  Util.expect_fail "fig3 Q=1" o;
  match o.counterexample with
  | Some c ->
    Util.checkb "message mentions disagreement" (Util.contains c.message "disagreement");
    Util.checkb "counterexample trace is well-formed" (Wellformed.is_well_formed c.trace);
    Util.checkb "has a decision path" (c.decisions <> [])
  | None -> assert false

let test_explore_exhaustive_flag () =
  let b = fig3 ~quantum:8 ~pris:[ 1; 1 ] in
  let o = Explore.explore b.scenario in
  Util.checkb "exhaustive" o.exhaustive;
  let o' = Explore.explore ~max_runs:5 b.scenario in
  Util.checkb "not exhaustive when capped" (not o'.exhaustive)

let test_preemption_bound_restricts () =
  (* With bound 0, only run-to-completion schedules: far fewer runs. *)
  let b = fig3 ~quantum:8 ~pris:[ 1; 1; 1 ] in
  let o0 = Explore.explore ~preemption_bound:0 b.scenario in
  let o1 = Explore.explore ~preemption_bound:1 b.scenario in
  Util.checkb "bound 0 fewer runs than bound 1" (o0.runs < o1.runs);
  Util.expect_ok "bound 0" o0;
  Util.expect_ok "bound 1" o1

let test_explore_respects_check () =
  (* A check that always fails produces a counterexample on the first run. *)
  let config = Util.uni_config ~quantum:8 [ 1 ] in
  let scenario =
    Explore.
      {
        name = "alwaysfail";
        config;
        make =
          (fun () ->
            {
              programs = [| (fun () -> Eff.invocation "x" (fun () -> Eff.local "s")) |];
              check = (fun _ -> Error "nope");
            });
      }
  in
  let o = Explore.explore scenario in
  Util.checki "one run" 1 o.runs;
  Util.expect_fail "always fail" o

let test_iter_schedules_coverage () =
  let b = fig3 ~quantum:8 ~pris:[ 1; 1 ] in
  let seen = ref 0 in
  let n =
    Explore.iter_schedules b.scenario ~f:(fun ~pids _r ->
        incr seen;
        Util.checkb "nonempty path" (pids <> []);
        `Continue)
  in
  Util.checki "callback per run" n !seen;
  let o = Explore.explore b.scenario in
  Util.checki "same count as explore" o.runs n

let test_random_runs_deterministic () =
  let b = fig3 ~quantum:1 ~pris:[ 1; 1; 1 ] in
  let o1 = Explore.random_runs ~runs:300 ~seed:5 b.scenario in
  let o2 = Explore.random_runs ~runs:300 ~seed:5 b.scenario in
  Util.checki "same verdict run count" o1.runs o2.runs

(* Record the naive sampler's schedule for run [i] of a campaign — the
   pure function of [Explore.run_seed seed i] that [Explore.sample]
   executes. *)
let sampled_schedule (scenario : Explore.scenario) ~seed i =
  let decisions = ref [] in
  let policy =
    Policy.of_factory "rec" (fun () ->
        let choose =
          Policy.prepare (Policy.random ~seed:(Explore.run_seed seed i))
        in
        fun v ->
          match choose v with
          | Some p as r ->
            decisions := p :: !decisions;
            r
          | None -> None)
  in
  let instance = scenario.Explore.make () in
  ignore (Engine.run ~config:scenario.Explore.config ~policy instance.Explore.programs);
  List.rev !decisions

let test_adjacent_campaign_seeds_disjoint () =
  (* Regression: per-run seeds are a splitmix-style hash of (seed, i).
     The old [seed + i] derivation made adjacent campaigns share all
     but one per-run seed, so campaigns 41 and 42 sampled essentially
     the same schedule set (39 of these 40 coincided). *)
  let runs = 40 in
  let b = fig3 ~quantum:1 ~pris:[ 1; 1; 1 ] in
  let schedules seed = List.init runs (sampled_schedule b.scenario ~seed) in
  let s41 = schedules 41 and s42 = schedules 42 in
  let shared = List.filter (fun s -> List.mem s s42) s41 in
  Util.checki "disjoint schedule sets" 0 (List.length shared);
  let seeds s = List.init runs (Explore.run_seed s) in
  let shared_seeds =
    List.filter (fun x -> List.mem x (seeds 42)) (seeds 41)
  in
  Util.checki "disjoint per-run seeds" 0 (List.length shared_seeds)

let test_sample_deterministic_across_jobs () =
  (* The sample contract: run [i] is a pure function of (seed, i), so
     the outcome — run count, counterexample message and schedule — is
     byte-identical at any [jobs]. *)
  let b = fig3 ~quantum:1 ~pris:[ 1; 1; 1 ] in
  let go jobs =
    Explore.sample ~runs:200 ~jobs ~strategy:Randsched.Naive ~seed:5 b.scenario
  in
  let o1 = go 1 and o2 = go 2 in
  Util.checki "same run count" o1.Explore.runs o2.Explore.runs;
  match (o1.counterexample, o2.counterexample) with
  | Some c1, Some c2 ->
    Alcotest.(check (list int)) "same schedule" c1.decisions c2.decisions;
    Alcotest.(check string) "same message" c1.message c2.message
  | None, None -> Alcotest.fail "expected a counterexample within 200 runs"
  | _ -> Alcotest.fail "divergent outcomes across jobs"

let test_strategies_find_fig3 () =
  (* Every sampling strategy finds the fig3 Q=1 disagreement within a
     modest budget, and the recorded schedule replays to the same
     failure through the Schedule machinery. *)
  let b = fig3 ~quantum:1 ~pris:[ 1; 1 ] in
  List.iter
    (fun strategy ->
      let o = Explore.sample ~runs:2_000 ~strategy ~seed:1 b.scenario in
      match o.Explore.counterexample with
      | None -> Alcotest.fail (Fmt.str "%a found nothing in 2000 runs" Randsched.pp strategy)
      | Some c ->
        Util.checkb
          (Fmt.str "%a counterexample replays" Randsched.pp strategy)
          (Schedule.verdict b.scenario c.decisions <> Ok ()))
    Randsched.[ Naive; Pct { depth = 5 }; Pos; Surw ]

let test_randsched_of_name () =
  (match Randsched.of_name ~depth:4 "pct" with
  | Ok (Randsched.Pct { depth }) -> Util.checki "depth" 4 depth
  | _ -> Alcotest.fail "pct");
  (match Randsched.of_name "random" with
  | Ok Randsched.Naive -> ()
  | _ -> Alcotest.fail "random is naive");
  (match Randsched.of_name "dfs" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown strategy");
  match Randsched.of_name ~depth:0 "pct" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted depth 0"

let test_stagger_max_interleave_legal () =
  (* The staggering policy never produces ill-formed traces. *)
  let layout = Layout.uniform ~processors:2 ~per_processor:3 in
  let config = Layout.to_config ~quantum:5 layout in
  let x = Shared.make "x" 0 in
  let bodies =
    Array.init 6 (fun _ () ->
        for _ = 1 to 3 do
          Eff.invocation "op" (fun () ->
              let v = Shared.read x in
              Eff.local "l";
              Shared.write x (v + 1))
        done)
  in
  let r = Util.run ~config ~policy:(Stagger.max_interleave ()) bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished)

let test_stagger_interleaves_more_than_rr () =
  let switches policy =
    let config = Util.uni_config ~quantum:2 [ 1; 1; 1 ] in
    let bodies =
      Array.init 3 (fun _ () ->
          Eff.invocation "op" (fun () ->
              for _ = 1 to 6 do
                Eff.local "s"
              done))
    in
    let r = Util.run ~config ~policy bodies in
    let rec count prev = function
      | [] -> 0
      | Trace.Stmt { pid; _ } :: rest -> (if pid <> prev then 1 else 0) + count pid rest
      | _ :: rest -> count prev rest
    in
    count (-1) (Trace.events r.trace)
  in
  let s_stagger = switches (Stagger.max_interleave ()) in
  Util.checkb
    (Printf.sprintf "stagger switches often (%d)" s_stagger)
    (s_stagger >= 6)

let test_preempt_after_rmw_triggers () =
  (* The policy switches right after a matching RMW. *)
  let config = Util.uni_config ~quantum:1 [ 1; 1 ] in
  let o = Hwf_objects.Cons_obj.make ~consensus_number:2 "target" in
  let bodies =
    Array.init 2 (fun pid () ->
        Eff.invocation "op" (fun () ->
            Eff.local "pre";
            ignore (Hwf_objects.Cons_obj.propose o pid);
            Eff.local "post"))
  in
  let policy = Stagger.preempt_after_rmw ~var_prefix:"target" ~fallback:Policy.first () in
  let r = Util.run ~config ~policy bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  (* After p0's propose, the policy must run p1 before p0's "post". *)
  let order =
    List.filter_map
      (function Trace.Stmt { pid; op; _ } -> Some (pid, Fmt.str "%a" Op.pp op) | _ -> None)
      (Trace.events r.trace)
  in
  let rec after_rmw = function
    | (0, s) :: (p, _) :: _ when Util.contains s "propose" -> p = 1
    | _ :: rest -> after_rmw rest
    | [] -> false
  in
  Util.checkb "switched after rmw" (after_rmw order)

let test_schedule_roundtrip () =
  let s = [ 0; 1; 1; 0; 2 ] in
  (match Schedule.of_string (Schedule.to_string s) with
  | Ok s' -> Alcotest.(check (list int)) "roundtrip" s s'
  | Error m -> Alcotest.fail m);
  (match Schedule.of_string "1 2\n2 1" with
  | Ok s' -> Alcotest.(check (list int)) "newlines ok" [ 0; 1; 1; 0 ] s'
  | Error m -> Alcotest.fail m);
  match Schedule.of_string "1 x 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage"

let test_schedule_replay_reproduces () =
  (* A counterexample found by explore must still fail when replayed
     through the Schedule machinery. *)
  let b = fig3 ~quantum:1 ~pris:[ 1; 1 ] in
  match (Explore.explore b.scenario).counterexample with
  | None -> Alcotest.fail "expected counterexample"
  | Some c -> (
    match Schedule.verdict b.scenario c.decisions with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "replay did not reproduce the failure")

let test_schedule_save_load () =
  let path = Filename.temp_file "hwf" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Schedule.save ~path [ 2; 0; 1 ];
      (match Schedule.load ~path () with
      | Ok s -> Alcotest.(check (list int)) "load" [ 2; 0; 1 ] s
      | Error m -> Alcotest.fail m);
      (match Schedule.load ~n:3 ~path () with
      | Ok s -> Alcotest.(check (list int)) "load within n" [ 2; 0; 1 ] s
      | Error m -> Alcotest.fail m);
      (* The saved schedule's highest pid (3 on the wire) exceeds a
         2-process scenario: load must reject it, naming the token.
         Out-of-range pids used to parse into never-runnable decisions,
         so a corrupt file replayed as if empty and vacuously passed. *)
      match Schedule.load ~n:2 ~path () with
      | Error m -> Util.checkb "names the token" (Util.contains m "\"3\"")
      | Ok _ -> Alcotest.fail "accepted a pid beyond the scenario")

let test_schedule_validation () =
  (match Schedule.of_string "0 1" with
  | Error m -> Util.checkb "names the token" (Util.contains m "\"0\"")
  | Ok _ -> Alcotest.fail "accepted pid 0 (pids are 1-based on the wire)");
  (match Schedule.of_string "1 x 2" with
  | Error m -> Util.checkb "names the token" (Util.contains m "\"x\"")
  | Ok _ -> Alcotest.fail "accepted garbage");
  (match Schedule.of_string ~n:2 "1 3" with
  | Error m -> Util.checkb "names the token" (Util.contains m "\"3\"")
  | Ok _ -> Alcotest.fail "accepted out-of-range pid");
  match Schedule.of_string ~n:2 "1 2 2" with
  | Ok s -> Alcotest.(check (list int)) "in-range parses" [ 0; 1; 1 ] s
  | Error m -> Alcotest.fail m

let test_replay_skips_unrunnable_entries () =
  (* The shrunk-schedule skip path: after shrinking, an entry may not be
     runnable at its turn. [Schedule.replay]'s fallback skips it and the
     run completes; the strict script (no fallback) stops the run
     instead. At Q=8 the whole first invocation of p0 is
     quantum-protected, so the demand for p1 at the second decision is
     exactly such an entry. *)
  let b = fig3 ~quantum:8 ~pris:[ 1; 1 ] in
  let sched = [ 0; 1; 0; 0 ] in
  let r, _ = Schedule.replay b.scenario sched in
  Util.checkb "fallback replay completes" (Array.for_all Fun.id r.Engine.finished);
  Util.checkb "and passes the check" (Schedule.verdict b.scenario sched = Ok ());
  let instance = b.scenario.Explore.make () in
  let r' =
    Engine.run ~config:b.scenario.Explore.config ~policy:(Policy.scripted sched)
      instance.Explore.programs
  in
  Util.checkb "strict script stops instead" (r'.Engine.stop = Engine.Policy_stopped)

let test_shrink_minimizes () =
  let b = fig3 ~quantum:1 ~pris:[ 1; 1 ] in
  match (Explore.explore b.scenario).counterexample with
  | None -> Alcotest.fail "expected counterexample"
  | Some c ->
    let small = Shrink.shrink b.scenario c.decisions in
    Util.checkb "still fails" (Schedule.verdict b.scenario small <> Ok ());
    Util.checkb
      (Printf.sprintf "no longer than original (%d <= %d)" (List.length small)
         (List.length c.decisions))
      (List.length small <= List.length c.decisions);
    (* local minimality: removing any single decision cures the failure *)
    List.iteri
      (fun i _ ->
        let cand = List.filteri (fun j _ -> j <> i) small in
        Util.checkb "locally minimal" (Schedule.verdict b.scenario cand = Ok ()))
      small

(* S3 regression: [chunk_pass] must pick the next chunk size against the
   list as it is after the pass, not the stale pre-pass length. With
   [fails = mem 10] over [0..10], the size-5 pass collapses the list to
   the single needed element; against the stale length 11 the old code
   then scheduled a size-2 pass over that one-element list, burning a
   shrink-budget call on an empty-list candidate. We pin both the
   minimal result and the exact (deterministic) predicate-call count. *)
let test_shrink_chunk_size_not_stale () =
  let calls = ref 0 in
  let fails cand =
    incr calls;
    List.mem 10 cand
  in
  let small = Shrink.shrink_by ~fails (List.init 11 Fun.id) in
  Alcotest.(check (list int)) "minimal" [ 10 ] small;
  (* 1 initial check + 3 chunk-phase calls + 1 singles-phase call; the
     stale-length bug added a wasted empty-candidate call. *)
  Util.checki "no budget wasted on oversized chunks" 5 !calls

let test_shrink_noop_on_passing () =
  let b = fig3 ~quantum:8 ~pris:[ 1; 1 ] in
  let passing = [ 0; 0; 0; 1 ] in
  Alcotest.(check (list int))
    "unchanged" passing
    (Shrink.shrink b.scenario passing)

let test_bivalence_horizon_fig3 () =
  let probe quantum =
    let b = fig3 ~quantum ~pris:[ 1; 1 ] in
    Bivalence.probe ~max_runs:100_000 ~scenario:b.scenario ~decision:b.last_decision ()
  in
  let p1 = probe 1 and p8 = probe 8 in
  Util.checkb "both values reachable at Q=1" (List.length p1.decisions = 2);
  Util.checkb "horizon shrinks with quantum"
    (p8.horizon < p1.horizon);
  Util.checkb "runs recorded" (p1.runs > 0 && p8.runs > 0)

let test_bivalence_univalent_case () =
  (* A scenario with a single proposer is univalent: horizon 0. *)
  let b = fig3 ~quantum:8 ~pris:[ 1 ] in
  let p = Bivalence.probe ~scenario:b.scenario ~decision:b.last_decision () in
  Util.checki "horizon" 0 p.horizon;
  Util.checki "one decision" 1 (List.length p.decisions)

let () =
  Alcotest.run "adversary"
    [
      ( "explore",
        [
          Alcotest.test_case "finds fig3 bug" `Quick test_explore_finds_fig3_bug;
          Alcotest.test_case "exhaustive flag" `Quick test_explore_exhaustive_flag;
          Alcotest.test_case "preemption bound" `Quick test_preemption_bound_restricts;
          Alcotest.test_case "respects check" `Quick test_explore_respects_check;
          Alcotest.test_case "iter_schedules" `Quick test_iter_schedules_coverage;
          Alcotest.test_case "random deterministic" `Quick test_random_runs_deterministic;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "adjacent seeds disjoint" `Quick
            test_adjacent_campaign_seeds_disjoint;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_sample_deterministic_across_jobs;
          Alcotest.test_case "all strategies find fig3" `Quick test_strategies_find_fig3;
          Alcotest.test_case "strategy names" `Quick test_randsched_of_name;
        ] );
      ( "stagger",
        [
          Alcotest.test_case "legal traces" `Quick test_stagger_max_interleave_legal;
          Alcotest.test_case "interleaves densely" `Quick test_stagger_interleaves_more_than_rr;
          Alcotest.test_case "preempt after rmw" `Quick test_preempt_after_rmw_triggers;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
          Alcotest.test_case "replay reproduces" `Quick test_schedule_replay_reproduces;
          Alcotest.test_case "replay skips unrunnable" `Quick
            test_replay_skips_unrunnable_entries;
          Alcotest.test_case "save/load" `Quick test_schedule_save_load;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimizes" `Quick test_shrink_minimizes;
          Alcotest.test_case "chunk size not stale" `Quick
            test_shrink_chunk_size_not_stale;
          Alcotest.test_case "noop on passing" `Quick test_shrink_noop_on_passing;
        ] );
      ( "bivalence",
        [
          Alcotest.test_case "horizon vs quantum" `Quick test_bivalence_horizon_fig3;
          Alcotest.test_case "univalent case" `Quick test_bivalence_univalent_case;
        ] );
    ]
