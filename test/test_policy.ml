open Hwf_sim

(* The policy combinators and scheduler-facing engine edge cases. *)

let counter_body log pid k () =
  Eff.invocation "w" (fun () ->
      for _ = 1 to k do
        Eff.local "s";
        log := pid :: !log
      done)

let run ~pris ~quantum ~policy ~steps_per =
  let config = Util.uni_config ~quantum pris in
  let log = ref [] in
  let bodies = Array.init (List.length pris) (fun pid -> counter_body log pid steps_per) in
  let r = Util.run ~config ~policy bodies in
  (r, List.rev !log)

let test_first_deterministic () =
  let _, order1 = run ~pris:[ 1; 1 ] ~quantum:4 ~policy:Policy.first ~steps_per:3 in
  let _, order2 = run ~pris:[ 1; 1 ] ~quantum:4 ~policy:Policy.first ~steps_per:3 in
  Alcotest.(check (list int)) "deterministic" order1 order2;
  Alcotest.(check (list int)) "p0 runs to completion first" [ 0; 0; 0; 1; 1; 1 ] order1

let test_highest_pid () =
  let _, order = run ~pris:[ 1; 1 ] ~quantum:4 ~policy:Policy.highest_pid ~steps_per:2 in
  Alcotest.(check (list int)) "p1 first" [ 1; 1; 0; 0 ] order

let test_by_priority_wakes_high () =
  (* by_priority runs the high-priority process first even though it has
     the larger pid (and is initially thinking). *)
  let _, order = run ~pris:[ 1; 3; 2 ] ~quantum:4 ~policy:Policy.by_priority ~steps_per:2 in
  Alcotest.(check (list int)) "priority order" [ 1; 1; 2; 2; 0; 0 ] order

let test_prefer_chain () =
  let policy = Policy.prefer [ 2; 0 ] ~fallback:Policy.first in
  let _, order = run ~pris:[ 1; 1; 1 ] ~quantum:100 ~policy ~steps_per:2 in
  Alcotest.(check (list int)) "2 then 0 then fallback" [ 2; 2; 0; 0; 1; 1 ] order

let test_round_robin_fairness () =
  let r, order =
    run ~pris:[ 1; 1; 1 ] ~quantum:2 ~policy:(Policy.round_robin ()) ~steps_per:6
  in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  (* every process appears; no process trails more than 2 quanta behind *)
  List.iter (fun pid -> Util.checkb "present" (List.mem pid order)) [ 0; 1; 2 ]

let test_random_seeded_reproducible () =
  let _, o1 = run ~pris:[ 1; 1; 1 ] ~quantum:3 ~policy:(Policy.random ~seed:7) ~steps_per:4 in
  let _, o2 = run ~pris:[ 1; 1; 1 ] ~quantum:3 ~policy:(Policy.random ~seed:7) ~steps_per:4 in
  let _, o3 = run ~pris:[ 1; 1; 1 ] ~quantum:3 ~policy:(Policy.random ~seed:8) ~steps_per:4 in
  Alcotest.(check (list int)) "same seed same schedule" o1 o2;
  Util.checkb "different seed differs somewhere" (o1 <> o3 || List.length o1 = 0)

let test_policy_value_reusable_across_runs () =
  (* Regression: policy constructors are factories — [Engine.run] calls
     [Policy.prepare] per run, so a stateful policy {e value} reused
     across runs behaves identically each time. Before the factory
     refactor, [random] carried its RNG stream and [round_robin] its
     rotation across runs, so the second run of the same value produced
     a different schedule. *)
  let go policy =
    let _, order = run ~pris:[ 1; 1; 1 ] ~quantum:3 ~policy ~steps_per:4 in
    order
  in
  let rand = Policy.random ~seed:7 in
  Alcotest.(check (list int)) "random value reusable" (go rand) (go rand);
  let rr = Policy.round_robin () in
  Alcotest.(check (list int)) "round_robin value reusable" (go rr) (go rr)

let test_scripted_strict_stops () =
  (* Without a fallback, a non-runnable script entry stops the run. *)
  let config = Util.uni_config ~quantum:4 [ 1; 2 ] in
  let log = ref [] in
  let bodies = [| counter_body log 0 3; counter_body log 1 3 |] in
  (* p1 (high) starts; then the script demands p0 while p1 is
     mid-invocation: illegal, hence not runnable, hence stop. *)
  let policy = Policy.scripted [ 1; 0 ] in
  let r = Engine.run ~config ~policy bodies in
  Util.checkb "stopped" (r.stop = Engine.Policy_stopped);
  Util.checki "only one statement ran" 1 (Trace.statements r.trace)

let test_zero_quantum () =
  (* Q = 0: the guarantee is empty, every point is preemptable — the
     asynchronous limit. Runs still complete under any policy. *)
  let r, order =
    run ~pris:[ 1; 1 ] ~quantum:0
      ~policy:(Hwf_adversary.Stagger.max_interleave ())
      ~steps_per:4
  in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  (* with no guarantee, max-interleave alternates every statement *)
  let rec alternating = function
    | a :: (b :: _ as rest) -> a <> b && alternating rest
    | _ -> true
  in
  Util.checkb "strict alternation" (alternating order)

let test_empty_program_set () =
  let config = Util.uni_config ~quantum:4 [ 1 ] in
  let r = Engine.run ~config ~policy:Policy.first [| (fun () -> ()) |] in
  Util.checkb "immediately finished" (Array.for_all Fun.id r.finished);
  Util.checki "no statements" 0 (Trace.statements r.trace)

let test_policy_rejects_non_runnable_choice () =
  let config = Util.uni_config ~quantum:4 [ 1; 2 ] in
  let log = ref [] in
  let bodies = [| counter_body log 0 3; counter_body log 1 3 |] in
  (* always answer p0 even when p1 (higher, mid-invocation) blocks it *)
  let evil = Policy.of_fun "evil" (fun v -> if v.step = 0 then Some 1 else Some 0) in
  match Engine.run ~config ~policy:evil bodies with
  | exception Invalid_argument msg -> Util.checkb "names policy" (Util.contains msg "evil")
  | _ -> Alcotest.fail "accepted a non-runnable choice"

let () =
  Alcotest.run "policy"
    [
      ( "combinators",
        [
          Alcotest.test_case "first deterministic" `Quick test_first_deterministic;
          Alcotest.test_case "highest pid" `Quick test_highest_pid;
          Alcotest.test_case "by priority" `Quick test_by_priority_wakes_high;
          Alcotest.test_case "prefer chain" `Quick test_prefer_chain;
          Alcotest.test_case "round robin fairness" `Quick test_round_robin_fairness;
          Alcotest.test_case "random reproducible" `Quick test_random_seeded_reproducible;
          Alcotest.test_case "policy value reusable" `Quick
            test_policy_value_reusable_across_runs;
          Alcotest.test_case "scripted strict" `Quick test_scripted_strict_stops;
        ] );
      ( "engine edges",
        [
          Alcotest.test_case "zero quantum" `Quick test_zero_quantum;
          Alcotest.test_case "empty program" `Quick test_empty_program_set;
          Alcotest.test_case "rejects non-runnable" `Quick
            test_policy_rejects_non_runnable_choice;
        ] );
    ]
