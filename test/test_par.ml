open Hwf_adversary
open Hwf_workload
open Hwf_faults

(* The domain pool and the parallel exploration/certification paths.
   The contract under test is determinism: [~jobs:n] for n > 1 must
   produce outcomes bit-identical to [~jobs:1] — same run counts, same
   verdicts, same (shrunk) counterexamples — whenever the search
   completes within its budgets (docs/PARALLELISM.md). *)

(* ---- the pool itself ---- *)

let test_pool_map_order () =
  let a = Array.init 200 Fun.id in
  let f x = (x * x) + 1 in
  Util.check
    Alcotest.(array int)
    "jobs=4 equals sequential map" (Array.map f a)
    (Hwf_par.Pool.map ~jobs:4 f a)

let test_pool_map_batched () =
  let a = Array.init 97 Fun.id in
  let f x = x * 3 in
  Util.check
    Alcotest.(array int)
    "batch=7 equals sequential map" (Array.map f a)
    (Hwf_par.Pool.map ~jobs:4 ~batch:7 f a)

let test_pool_map_edges () =
  Util.check Alcotest.(array int) "empty" [||] (Hwf_par.Pool.map ~jobs:4 succ [||]);
  Util.check Alcotest.(array int) "singleton" [| 2 |] (Hwf_par.Pool.map ~jobs:4 succ [| 1 |]);
  Util.check
    Alcotest.(list int)
    "map_list" [ 2; 3; 4 ]
    (Hwf_par.Pool.map_list ~jobs:3 succ [ 1; 2; 3 ])

let test_pool_exception_deterministic () =
  (* Several cells raise; the re-raised exception must be the one of the
     lowest failing index no matter how the domains interleaved. *)
  let a = Array.init 64 Fun.id in
  let f i = if i mod 13 = 5 then failwith (string_of_int i) else i in
  for _ = 1 to 5 do
    match Hwf_par.Pool.map ~jobs:4 f a with
    | _ -> Alcotest.fail "expected an exception"
    | exception Failure m -> Util.check Alcotest.string "lowest failing index" "5" m
  done

let test_pool_skips_past_error () =
  (* S2 regression. With [batch = n], whichever worker claims first owns
     the whole array; the other claims past the end and retires. Cell 0
     raises, so every later cell in the batch must be skipped — the old
     worker loop kept evaluating all of them after the error was
     recorded. Deterministic regardless of which worker wins the first
     claim: exactly one evaluation, n - 1 skips, index-0 exception. *)
  let n = 32 in
  let a = Array.init n Fun.id in
  let evals = Atomic.make 0 in
  let f i =
    Atomic.incr evals;
    if i = 0 then failwith "cell0" else i
  in
  let stats = Hwf_par.Pool.make_stats ~jobs:2 in
  (match Hwf_par.Pool.map ~jobs:2 ~batch:n ~stats f a with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure m -> Util.check Alcotest.string "index-0 exception" "cell0" m);
  Util.checki "exactly one cell evaluated" 1 (Atomic.get evals);
  Util.checki "stats: evaluated" 1 (Hwf_par.Pool.stats_evaluated stats);
  Util.checki "stats: skipped" (n - 1) (Hwf_par.Pool.stats_skipped stats)

let test_pool_worker_death_contained () =
  (* Robustness regression: an exception raised outside [f] — in the
     worker loop itself, here injected at retirement via the test hook —
     used to escape through [Domain.join], bypassing the min-index
     exception contract entirely. It must be recorded and re-raised by
     [map] like any other error. *)
  let hook wid = if wid > 0 then failwith "worker-death" in
  Hwf_par.Pool.worker_retire_test_hook := Some hook;
  Fun.protect
    ~finally:(fun () -> Hwf_par.Pool.worker_retire_test_hook := None)
    (fun () ->
      let a = Array.init 64 Fun.id in
      (match Hwf_par.Pool.map ~jobs:2 succ a with
      | _ -> Alcotest.fail "expected the worker-death exception"
      | exception Failure m ->
        Util.check Alcotest.string "surfaced via map" "worker-death" m);
      (* A real cell error has a lower index than the worker-death
         sentinel, so it must win. *)
      let f i = if i = 5 then failwith "cell5" else i in
      match Hwf_par.Pool.map ~jobs:2 f a with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure m ->
        Util.check Alcotest.string "cell error outranks worker death" "cell5" m)

let test_pool_stats_size_mismatch () =
  (* Robustness regression: stats sized for fewer workers than [map]
     uses silently folded the overflow workers into the last bucket;
     now the mismatch is refused at call time. *)
  let stats = Hwf_par.Pool.make_stats ~jobs:2 in
  let a = Array.init 32 Fun.id in
  (match Hwf_par.Pool.map ~jobs:4 ~stats succ a with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument m ->
    Util.checkb "message names the mismatch" (Util.contains m "Pool.map"));
  (* A larger stats array is fine, and every count lands on the true
     worker id — slots past the workers actually used stay zero. *)
  let stats = Hwf_par.Pool.make_stats ~jobs:4 in
  ignore (Hwf_par.Pool.map ~jobs:2 ~stats succ a);
  let per_worker = Hwf_par.Pool.stats_per_worker stats in
  Util.checki "slots sized by make_stats" 4 (Array.length per_worker);
  Util.checki "counts on true worker ids" 32 (per_worker.(0) + per_worker.(1));
  Util.checki "unused slots untouched" 0 (per_worker.(2) + per_worker.(3))

let test_pool_stats () =
  let a = Array.init 100 Fun.id in
  let stats = Hwf_par.Pool.make_stats ~jobs:4 in
  let r = Hwf_par.Pool.map ~jobs:4 ~stats succ a in
  Util.check Alcotest.(array int) "result unaffected" (Array.map succ a) r;
  Util.checki "every cell counted once" 100 (Hwf_par.Pool.stats_evaluated stats);
  Util.checki "nothing skipped" 0 (Hwf_par.Pool.stats_skipped stats);
  Util.checkb "claims cover the array" (Hwf_par.Pool.stats_claims stats >= 100 / 1 / 4);
  Util.checki "per-worker counts sum to total" 100
    (Array.fold_left ( + ) 0 (Hwf_par.Pool.stats_per_worker stats));
  (* Accumulates across calls, and the inline path attributes to worker 0. *)
  ignore (Hwf_par.Pool.map ~jobs:1 ~stats succ a);
  Util.checki "accumulated" 200 (Hwf_par.Pool.stats_evaluated stats)

(* ---- parallel explore ---- *)

let fig3 ~quantum ~pris =
  Scenarios.consensus ~name:"par.f3" ~impl:Scenarios.Fig3 ~quantum
    ~layout:(List.map (fun p -> (0, p)) pris)

let check_outcomes name (o1 : Explore.outcome) (o4 : Explore.outcome) =
  Util.checki (name ^ ": runs") o1.runs o4.runs;
  Util.checkb (name ^ ": exhaustive") (o1.exhaustive = o4.exhaustive);
  match (o1.counterexample, o4.counterexample) with
  | None, None -> ()
  | Some c1, Some c4 ->
    Util.check Alcotest.string (name ^ ": message") c1.message c4.message;
    Util.check
      Alcotest.(list int)
      (name ^ ": decision path") c1.decisions c4.decisions
  | Some _, None -> Alcotest.failf "%s: jobs=4 missed the counterexample" name
  | None, Some _ -> Alcotest.failf "%s: jobs=4 invented a counterexample" name

let test_explore_parallel_identical_pass () =
  (* Q = 8: exhaustive, no violation — counts and flags must agree. *)
  let b = fig3 ~quantum:8 ~pris:[ 1; 1 ] in
  let o1 = Explore.explore ~jobs:1 b.scenario in
  let o4 = Explore.explore ~jobs:4 b.scenario in
  Util.checkb "exhaustive at Q=8" o1.exhaustive;
  check_outcomes "fig3 Q=8 2p" o1 o4;
  let b3 = fig3 ~quantum:8 ~pris:[ 1; 1; 1 ] in
  let o1 = Explore.explore ~preemption_bound:1 ~jobs:1 b3.scenario in
  let o4 = Explore.explore ~preemption_bound:1 ~jobs:4 b3.scenario in
  check_outcomes "fig3 Q=8 3p bounded" o1 o4

let test_explore_parallel_identical_fail () =
  (* Q = 1: the Theorem 1 violation exists; both modes must converge on
     the same first counterexample in canonical schedule order. *)
  let b = fig3 ~quantum:1 ~pris:[ 1; 1 ] in
  let o1 = Explore.explore ~jobs:1 b.scenario in
  let o4 = Explore.explore ~jobs:4 b.scenario in
  Util.expect_fail "fig3 Q=1 jobs=1" o1;
  Util.expect_fail "fig3 Q=1 jobs=4" o4;
  check_outcomes "fig3 Q=1 2p" o1 o4;
  let b3 = fig3 ~quantum:1 ~pris:[ 1; 1; 1 ] in
  let o1 = Explore.explore ~jobs:1 b3.scenario in
  let o4 = Explore.explore ~jobs:4 b3.scenario in
  check_outcomes "fig3 Q=1 3p" o1 o4

let counting_scenario b =
  let makes = Atomic.make 0 in
  let scenario =
    Explore.
      {
        b.Scenarios.scenario with
        make =
          (fun () ->
            Atomic.incr makes;
            b.Scenarios.scenario.Explore.make ());
      }
  in
  (makes, scenario)

let test_explore_max_runs_exact () =
  (* Regression (PR 2): the max_runs budget is one global atomic
     counter, claimed once per engine run — the number of runs actually
     performed must never exceed the budget, no matter how many domains
     race on it. *)
  let b = fig3 ~quantum:8 ~pris:[ 1; 1; 1 ] in
  let makes, scenario = counting_scenario b in
  let o = Explore.explore ~jobs:4 ~max_runs:25 scenario in
  Util.checkb "no overshoot past max_runs" (Atomic.get makes <= 25);
  Util.checkb "reported runs within budget" (o.runs <= 25);
  Util.checkb "truncated search is not exhaustive" (not o.exhaustive);
  let makes1, scenario1 = counting_scenario b in
  let o1 = Explore.explore ~jobs:1 ~max_runs:25 scenario1 in
  Util.checki "sequential spends the whole budget" 25 (Atomic.get makes1);
  Util.checki "sequential reports the budget" 25 o1.runs

let test_random_runs_parallel_identical () =
  let b = fig3 ~quantum:1 ~pris:[ 1; 1; 1 ] in
  let o1 = Explore.random_runs ~runs:200 ~seed:5 ~jobs:1 b.scenario in
  let o4 = Explore.random_runs ~runs:200 ~seed:5 ~jobs:4 b.scenario in
  Util.checki "same first failing run" o1.runs o4.runs;
  match (o1.counterexample, o4.counterexample) with
  | Some c1, Some c4 -> Util.check Alcotest.string "same message" c1.message c4.message
  | None, None -> ()
  | _ -> Alcotest.fail "random_runs: jobs=1 and jobs=4 verdicts differ"

(* ---- parallel certify ---- *)

let check_reports name (r1 : Certify.report) (r4 : Certify.report) =
  Util.checki (name ^ ": plans") r1.plans r4.plans;
  Util.checki (name ^ ": passed") r1.passed r4.passed;
  Util.checki (name ^ ": blocked") r1.blocked r4.blocked;
  Util.checki (name ^ ": worst own-steps") r1.worst_own_steps r4.worst_own_steps;
  Util.checki (name ^ ": failures") (List.length r1.failures) (List.length r4.failures);
  List.iter2
    (fun (f1 : Certify.failure) (f4 : Certify.failure) ->
      Util.check Alcotest.string (name ^ ": failure message") f1.message f4.message;
      Util.check
        Alcotest.(list int)
        (name ^ ": shrunk schedule") f1.schedule f4.schedule;
      Util.checki (name ^ ": shrunk_from") f1.shrunk_from f4.shrunk_from)
    r1.failures r4.failures

let test_certify_parallel_identical_clean () =
  (* A full quick campaign (crash sweep + chaos) on Fig. 3: every cell
     passes, and the parallel report must match count for count. *)
  let subject = Suite.fig3 ~seed:17 () in
  let plans = Suite.campaign ~quick:true ~seed:17 subject in
  Util.checkb "campaign is non-trivial" (List.length plans > 4);
  let r1 = Certify.certify ~jobs:1 subject plans in
  let r4 = Certify.certify ~jobs:4 subject plans in
  Util.checkb "fig3 certifies" (Certify.certified r1);
  check_reports "fig3 quick campaign" r1 r4

let test_certify_parallel_identical_failures () =
  (* The negative control fails under the Axiom-2-suspended plan; a
     mixed pass/fail plan list must fold back into an identical report,
     including each failure's shrunk schedule. *)
  let subject = Suite.negative () in
  let plans = [ Plan.none; Suite.negative_plan; Plan.none; Suite.negative_plan ] in
  let r1 = Certify.certify ~jobs:1 subject plans in
  let r4 = Certify.certify ~jobs:4 subject plans in
  Util.checki "two rejected cells" 2 (List.length r1.failures);
  check_reports "negative control" r1 r4

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "batched map" `Quick test_pool_map_batched;
          Alcotest.test_case "edge sizes" `Quick test_pool_map_edges;
          Alcotest.test_case "skips cells past a recorded error" `Quick
            test_pool_skips_past_error;
          Alcotest.test_case "stats hook" `Quick test_pool_stats;
          Alcotest.test_case "deterministic exceptions" `Quick
            test_pool_exception_deterministic;
          Alcotest.test_case "worker death contained" `Quick
            test_pool_worker_death_contained;
          Alcotest.test_case "stats size mismatch refused" `Quick
            test_pool_stats_size_mismatch;
        ] );
      ( "explore",
        [
          Alcotest.test_case "jobs=4 identical (pass)" `Quick
            test_explore_parallel_identical_pass;
          Alcotest.test_case "jobs=4 identical (counterexample)" `Quick
            test_explore_parallel_identical_fail;
          Alcotest.test_case "max_runs exact under fan-out" `Quick
            test_explore_max_runs_exact;
          Alcotest.test_case "random_runs jobs=4 identical" `Quick
            test_random_runs_parallel_identical;
        ] );
      ( "certify",
        [
          Alcotest.test_case "jobs=4 identical report (clean)" `Quick
            test_certify_parallel_identical_clean;
          Alcotest.test_case "jobs=4 identical report (failures)" `Quick
            test_certify_parallel_identical_failures;
        ] );
    ]
