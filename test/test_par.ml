open Hwf_adversary
open Hwf_workload
open Hwf_faults

(* The domain pool and the parallel exploration/certification paths.
   The contract under test is determinism: [~jobs:n] for n > 1 must
   produce outcomes bit-identical to [~jobs:1] — same run counts, same
   verdicts, same (shrunk) counterexamples — whenever the search
   completes within its budgets (docs/PARALLELISM.md). *)

(* ---- the pool itself ---- *)

let test_pool_map_order () =
  let a = Array.init 200 Fun.id in
  let f x = (x * x) + 1 in
  Util.check
    Alcotest.(array int)
    "jobs=4 equals sequential map" (Array.map f a)
    (Hwf_par.Pool.map ~jobs:4 f a)

let test_pool_map_grained () =
  let a = Array.init 97 Fun.id in
  let f x = x * 3 in
  List.iter
    (fun grain ->
      Util.check
        Alcotest.(array int)
        (Printf.sprintf "grain=%d equals sequential map" grain)
        (Array.map f a)
        (Hwf_par.Pool.map ~jobs:4 ~grain f a))
    [ 1; 7; 96; 97; 200 ]

let test_pool_map_edges () =
  Util.check Alcotest.(array int) "empty" [||] (Hwf_par.Pool.map ~jobs:4 succ [||]);
  Util.check Alcotest.(array int) "singleton" [| 2 |] (Hwf_par.Pool.map ~jobs:4 succ [| 1 |]);
  Util.check
    Alcotest.(list int)
    "map_list" [ 2; 3; 4 ]
    (Hwf_par.Pool.map_list ~jobs:3 succ [ 1; 2; 3 ])

let test_pool_exception_deterministic () =
  (* Several cells raise; the re-raised exception must be the one of the
     lowest failing index no matter how the domains interleaved. *)
  let a = Array.init 64 Fun.id in
  let f i = if i mod 13 = 5 then failwith (string_of_int i) else i in
  for _ = 1 to 5 do
    match Hwf_par.Pool.map ~jobs:4 f a with
    | _ -> Alcotest.fail "expected an exception"
    | exception Failure m -> Util.check Alcotest.string "lowest failing index" "5" m
  done

let test_pool_skips_past_error () =
  (* S2 regression. Cell 0 raises, and index 0 is the global minimum, so
     whichever worker executes chunk 0 must skip the rest of that chunk
     after recording the error — the old worker loop kept evaluating
     after the error was recorded. With two workers the other chunk may
     race ahead of the error becoming visible, so the deterministic
     facts are: the index-0 exception wins, every cell is either
     evaluated or skipped, and at least the remainder of chunk 0 (15
     cells) is skipped. *)
  let n = 32 in
  let a = Array.init n Fun.id in
  let evals = Atomic.make 0 in
  let f i =
    Atomic.incr evals;
    if i = 0 then failwith "cell0" else i
  in
  let stats = Hwf_par.Pool.make_stats ~jobs:2 in
  (match Hwf_par.Pool.map ~jobs:2 ~grain:16 ~stats f a with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure m -> Util.check Alcotest.string "index-0 exception" "cell0" m);
  Util.checki "every cell evaluated or skipped" n
    (Hwf_par.Pool.stats_evaluated stats + Hwf_par.Pool.stats_skipped stats);
  Util.checki "stats agree with the cell bodies" (Atomic.get evals)
    (Hwf_par.Pool.stats_evaluated stats);
  Util.checkb "the failing chunk's tail is skipped"
    (Hwf_par.Pool.stats_skipped stats >= 15)

let test_pool_forced_steal () =
  (* Starve one worker: cell 0 (owned by worker 0) spins until every
     other cell is done, so worker 1 must drain its own block and then
     steal worker 0's remaining chunks 1..3 — exactly 3 steals, and the
     result is still the sequential one. Worker 1's first own cell
     (cell 4) gates on cell 0 having started: worker 1 cannot reach its
     steal phase before worker 0 owns chunk 0, so the steal count is
     deterministic even on one core. *)
  let n = 8 in
  let done_ = Atomic.make 0 in
  let started0 = Atomic.make false in
  let f i =
    if i = 0 then begin
      Atomic.set started0 true;
      while Atomic.get done_ < n - 1 do
        Domain.cpu_relax ()
      done
    end
    else if i = 4 then
      while not (Atomic.get started0) do
        Domain.cpu_relax ()
      done;
    Atomic.incr done_;
    i * 10
  in
  let stats = Hwf_par.Pool.make_stats ~jobs:2 in
  let r = Hwf_par.Pool.map ~jobs:2 ~grain:1 ~stats f (Array.init n Fun.id) in
  Util.check
    Alcotest.(array int)
    "stolen chunks land in their slots"
    (Array.init n (fun i -> i * 10))
    r;
  Util.checki "worker 1 stole the starved worker's chunks" 3
    (Hwf_par.Pool.stats_steals stats);
  Util.checki "all chunks claimed exactly once" n (Hwf_par.Pool.stats_claims stats)

let test_pool_scratch_per_worker () =
  (* [map_scratch]: every cell sees the scratch created on its own
     worker, and [make] runs exactly once per worker. Cell 0's worker is
     starved (as above) so both workers demonstrably participate: cells
     1..7 must all carry the non-starved worker's scratch. *)
  let n = 8 in
  let done_ = Atomic.make 0 in
  let started0 = Atomic.make false in
  let next_id = Atomic.make 0 in
  let make () = Atomic.fetch_and_add next_id 1 in
  let f scratch i =
    if i = 0 then begin
      Atomic.set started0 true;
      while Atomic.get done_ < n - 1 do
        Domain.cpu_relax ()
      done
    end
    else if i = 4 then
      while not (Atomic.get started0) do
        Domain.cpu_relax ()
      done;
    Atomic.incr done_;
    (scratch, i * 2)
  in
  let r = Hwf_par.Pool.map_scratch ~jobs:2 ~grain:1 ~make f (Array.init n Fun.id) in
  Array.iteri (fun i (_, y) -> Util.checki "cell result" (i * 2) y) r;
  Util.checki "make ran once per worker" 2 (Atomic.get next_id);
  let s0 = fst r.(0) in
  Array.iteri
    (fun i (s, _) ->
      if i > 0 then
        Util.checkb "stolen cells ran on the thief's scratch" (s <> s0))
    r

let test_pool_worker_death_contained () =
  (* Robustness regression: an exception raised outside [f] — in the
     worker loop itself, here injected at retirement via the test hook —
     used to escape through [Domain.join], bypassing the min-index
     exception contract entirely. It must be recorded and re-raised by
     [map] like any other error. *)
  let hook wid = if wid > 0 then failwith "worker-death" in
  Hwf_par.Pool.worker_retire_test_hook := Some hook;
  Fun.protect
    ~finally:(fun () -> Hwf_par.Pool.worker_retire_test_hook := None)
    (fun () ->
      let a = Array.init 64 Fun.id in
      (match Hwf_par.Pool.map ~jobs:2 succ a with
      | _ -> Alcotest.fail "expected the worker-death exception"
      | exception Failure m ->
        Util.check Alcotest.string "surfaced via map" "worker-death" m);
      (* A real cell error has a lower index than the worker-death
         sentinel, so it must win. *)
      let f i = if i = 5 then failwith "cell5" else i in
      match Hwf_par.Pool.map ~jobs:2 f a with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure m ->
        Util.check Alcotest.string "cell error outranks worker death" "cell5" m)

let test_pool_stats_size_mismatch () =
  (* Robustness regression: stats sized for fewer workers than [map]
     uses silently folded the overflow workers into the last bucket;
     now the mismatch is refused at call time. *)
  let stats = Hwf_par.Pool.make_stats ~jobs:2 in
  let a = Array.init 32 Fun.id in
  (match Hwf_par.Pool.map ~jobs:4 ~stats succ a with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument m ->
    Util.checkb "message names the mismatch" (Util.contains m "Pool.map"));
  (* A larger stats array is fine, and every count lands on the true
     worker id — slots past the workers actually used stay zero. *)
  let stats = Hwf_par.Pool.make_stats ~jobs:4 in
  ignore (Hwf_par.Pool.map ~jobs:2 ~stats succ a);
  let per_worker = Hwf_par.Pool.stats_per_worker stats in
  Util.checki "slots sized by make_stats" 4 (Array.length per_worker);
  Util.checki "counts on true worker ids" 32 (per_worker.(0) + per_worker.(1));
  Util.checki "unused slots untouched" 0 (per_worker.(2) + per_worker.(3))

let test_pool_stats () =
  let a = Array.init 100 Fun.id in
  let stats = Hwf_par.Pool.make_stats ~jobs:4 in
  let r = Hwf_par.Pool.map ~jobs:4 ~stats succ a in
  Util.check Alcotest.(array int) "result unaffected" (Array.map succ a) r;
  Util.checki "every cell counted once" 100 (Hwf_par.Pool.stats_evaluated stats);
  Util.checki "nothing skipped" 0 (Hwf_par.Pool.stats_skipped stats);
  Util.checkb "claims cover the array" (Hwf_par.Pool.stats_claims stats >= 100 / 1 / 4);
  Util.checki "per-worker counts sum to total" 100
    (Array.fold_left ( + ) 0 (Hwf_par.Pool.stats_per_worker stats));
  (* Accumulates across calls, and the inline path attributes to worker 0. *)
  ignore (Hwf_par.Pool.map ~jobs:1 ~stats succ a);
  Util.checki "accumulated" 200 (Hwf_par.Pool.stats_evaluated stats)

(* ---- parallel explore ---- *)

let fig3 ~quantum ~pris =
  Scenarios.consensus ~name:"par.f3" ~impl:Scenarios.Fig3 ~quantum
    ~layout:(List.map (fun p -> (0, p)) pris)

let check_outcomes name (o1 : Explore.outcome) (o4 : Explore.outcome) =
  Util.checki (name ^ ": runs") o1.runs o4.runs;
  Util.checkb (name ^ ": exhaustive") (o1.exhaustive = o4.exhaustive);
  match (o1.counterexample, o4.counterexample) with
  | None, None -> ()
  | Some c1, Some c4 ->
    Util.check Alcotest.string (name ^ ": message") c1.message c4.message;
    Util.check
      Alcotest.(list int)
      (name ^ ": decision path") c1.decisions c4.decisions
  | Some _, None -> Alcotest.failf "%s: jobs=4 missed the counterexample" name
  | None, Some _ -> Alcotest.failf "%s: jobs=4 invented a counterexample" name

let test_explore_parallel_identical_pass () =
  (* Q = 8: exhaustive, no violation — counts and flags must agree. *)
  let b = fig3 ~quantum:8 ~pris:[ 1; 1 ] in
  let o1 = Explore.explore ~jobs:1 b.scenario in
  let o4 = Explore.explore ~jobs:4 b.scenario in
  Util.checkb "exhaustive at Q=8" o1.exhaustive;
  check_outcomes "fig3 Q=8 2p" o1 o4;
  let b3 = fig3 ~quantum:8 ~pris:[ 1; 1; 1 ] in
  let o1 = Explore.explore ~preemption_bound:1 ~jobs:1 b3.scenario in
  let o4 = Explore.explore ~preemption_bound:1 ~jobs:4 b3.scenario in
  check_outcomes "fig3 Q=8 3p bounded" o1 o4

let test_explore_parallel_identical_fail () =
  (* Q = 1: the Theorem 1 violation exists; both modes must converge on
     the same first counterexample in canonical schedule order. *)
  let b = fig3 ~quantum:1 ~pris:[ 1; 1 ] in
  let o1 = Explore.explore ~jobs:1 b.scenario in
  let o4 = Explore.explore ~jobs:4 b.scenario in
  Util.expect_fail "fig3 Q=1 jobs=1" o1;
  Util.expect_fail "fig3 Q=1 jobs=4" o4;
  check_outcomes "fig3 Q=1 2p" o1 o4;
  let b3 = fig3 ~quantum:1 ~pris:[ 1; 1; 1 ] in
  let o1 = Explore.explore ~jobs:1 b3.scenario in
  let o4 = Explore.explore ~jobs:4 b3.scenario in
  check_outcomes "fig3 Q=1 3p" o1 o4

let counting_scenario b =
  let makes = Atomic.make 0 in
  let scenario =
    Explore.
      {
        b.Scenarios.scenario with
        make =
          (fun () ->
            Atomic.incr makes;
            b.Scenarios.scenario.Explore.make ());
      }
  in
  (makes, scenario)

let test_explore_max_runs_exact () =
  (* Regression (PR 2): the max_runs budget is one global atomic
     counter, claimed once per engine run — the number of runs actually
     performed must never exceed the budget, no matter how many domains
     race on it. *)
  let b = fig3 ~quantum:8 ~pris:[ 1; 1; 1 ] in
  let makes, scenario = counting_scenario b in
  let o = Explore.explore ~jobs:4 ~max_runs:25 scenario in
  Util.checkb "no overshoot past max_runs" (Atomic.get makes <= 25);
  Util.checkb "reported runs within budget" (o.runs <= 25);
  Util.checkb "truncated search is not exhaustive" (not o.exhaustive);
  let makes1, scenario1 = counting_scenario b in
  let o1 = Explore.explore ~jobs:1 ~max_runs:25 scenario1 in
  Util.checki "sequential spends the whole budget" 25 (Atomic.get makes1);
  Util.checki "sequential reports the budget" 25 o1.runs

let test_explore_jobs_grain_matrix () =
  (* The determinism contract quantified over the knobs: any jobs/grain
     combination must reproduce the sequential outcome bit for bit,
     counterexample path included. *)
  let b = fig3 ~quantum:1 ~pris:[ 1; 1 ] in
  let o1 = Explore.explore ~jobs:1 b.scenario in
  Util.expect_fail "fig3 Q=1 baseline" o1;
  List.iter
    (fun jobs ->
      List.iter
        (fun grain ->
          let o = Explore.explore ~jobs ~grain b.scenario in
          check_outcomes (Printf.sprintf "jobs=%d grain=%d" jobs grain) o1 o)
        [ 1; 2; 3 ])
    [ 2; 4; 8 ]

let test_random_runs_parallel_identical () =
  let b = fig3 ~quantum:1 ~pris:[ 1; 1; 1 ] in
  let o1 = Explore.random_runs ~runs:200 ~seed:5 ~jobs:1 b.scenario in
  let o4 = Explore.random_runs ~runs:200 ~seed:5 ~jobs:4 b.scenario in
  Util.checki "same first failing run" o1.runs o4.runs;
  match (o1.counterexample, o4.counterexample) with
  | Some c1, Some c4 -> Util.check Alcotest.string "same message" c1.message c4.message
  | None, None -> ()
  | _ -> Alcotest.fail "random_runs: jobs=1 and jobs=4 verdicts differ"

let test_random_runs_grain_identical () =
  let b = fig3 ~quantum:1 ~pris:[ 1; 1; 1 ] in
  let o1 = Explore.random_runs ~runs:100 ~seed:5 ~jobs:1 b.scenario in
  List.iter
    (fun grain ->
      let o = Explore.random_runs ~runs:100 ~seed:5 ~jobs:4 ~grain b.scenario in
      Util.checki (Printf.sprintf "grain=%d: same first failing run" grain) o1.runs
        o.runs;
      match (o1.counterexample, o.counterexample) with
      | Some c1, Some c -> Util.check Alcotest.string "same message" c1.message c.message
      | None, None -> ()
      | _ -> Alcotest.failf "random_runs grain=%d: verdict differs from jobs=1" grain)
    [ 1; 7; 50 ]

(* ---- parallel certify ---- *)

let check_reports name (r1 : Certify.report) (r4 : Certify.report) =
  Util.checki (name ^ ": plans") r1.plans r4.plans;
  Util.checki (name ^ ": passed") r1.passed r4.passed;
  Util.checki (name ^ ": blocked") r1.blocked r4.blocked;
  Util.checki (name ^ ": worst own-steps") r1.worst_own_steps r4.worst_own_steps;
  Util.checki (name ^ ": failures") (List.length r1.failures) (List.length r4.failures);
  List.iter2
    (fun (f1 : Certify.failure) (f4 : Certify.failure) ->
      Util.check Alcotest.string (name ^ ": failure message") f1.message f4.message;
      Util.check
        Alcotest.(list int)
        (name ^ ": shrunk schedule") f1.schedule f4.schedule;
      Util.checki (name ^ ": shrunk_from") f1.shrunk_from f4.shrunk_from)
    r1.failures r4.failures

let test_certify_parallel_identical_clean () =
  (* A full quick campaign (crash sweep + chaos) on Fig. 3: every cell
     passes, and the parallel report must match count for count. *)
  let subject = Suite.fig3 ~seed:17 () in
  let plans = Suite.campaign ~quick:true ~seed:17 subject in
  Util.checkb "campaign is non-trivial" (List.length plans > 4);
  let r1 = Certify.certify ~jobs:1 subject plans in
  let r4 = Certify.certify ~jobs:4 subject plans in
  Util.checkb "fig3 certifies" (Certify.certified r1);
  check_reports "fig3 quick campaign" r1 r4

let test_certify_parallel_identical_failures () =
  (* The negative control fails under the Axiom-2-suspended plan; a
     mixed pass/fail plan list must fold back into an identical report,
     including each failure's shrunk schedule. *)
  let subject = Suite.negative () in
  let plans = [ Plan.none; Suite.negative_plan; Plan.none; Suite.negative_plan ] in
  let r1 = Certify.certify ~jobs:1 subject plans in
  let r4 = Certify.certify ~jobs:4 subject plans in
  Util.checki "two rejected cells" 2 (List.length r1.failures);
  check_reports "negative control" r1 r4;
  (* Grain must be invisible in the report too. *)
  List.iter
    (fun grain ->
      let r = Certify.certify ~jobs:3 ~grain subject plans in
      check_reports (Printf.sprintf "negative control grain=%d" grain) r1 r)
    [ 1; 2; 4 ]

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "grained map" `Quick test_pool_map_grained;
          Alcotest.test_case "edge sizes" `Quick test_pool_map_edges;
          Alcotest.test_case "skips cells past a recorded error" `Quick
            test_pool_skips_past_error;
          Alcotest.test_case "forced steal" `Quick test_pool_forced_steal;
          Alcotest.test_case "scratch per worker" `Quick test_pool_scratch_per_worker;
          Alcotest.test_case "stats hook" `Quick test_pool_stats;
          Alcotest.test_case "deterministic exceptions" `Quick
            test_pool_exception_deterministic;
          Alcotest.test_case "worker death contained" `Quick
            test_pool_worker_death_contained;
          Alcotest.test_case "stats size mismatch refused" `Quick
            test_pool_stats_size_mismatch;
        ] );
      ( "explore",
        [
          Alcotest.test_case "jobs=4 identical (pass)" `Quick
            test_explore_parallel_identical_pass;
          Alcotest.test_case "jobs=4 identical (counterexample)" `Quick
            test_explore_parallel_identical_fail;
          Alcotest.test_case "max_runs exact under fan-out" `Quick
            test_explore_max_runs_exact;
          Alcotest.test_case "jobs x grain identity matrix" `Quick
            test_explore_jobs_grain_matrix;
          Alcotest.test_case "random_runs jobs=4 identical" `Quick
            test_random_runs_parallel_identical;
          Alcotest.test_case "random_runs grain identical" `Quick
            test_random_runs_grain_identical;
        ] );
      ( "certify",
        [
          Alcotest.test_case "jobs=4 identical report (clean)" `Quick
            test_certify_parallel_identical_clean;
          Alcotest.test_case "jobs=4 identical report (failures)" `Quick
            test_certify_parallel_identical_failures;
        ] );
    ]
