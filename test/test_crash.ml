open Hwf_sim
open Hwf_core
open Hwf_adversary
open Hwf_workload

(* Wait-freedom under halting failures: a process parked forever
   mid-invocation must not stop the others (the paper's Sec. 2 failure
   model). *)

let run_with_crash ~config ~victims ~seed ~step_limit bodies =
  let policy = Crash.wrap ~victims (Policy.random ~seed) in
  let r = Engine.run ~step_limit ~config ~policy bodies in
  (match Wellformed.check r.trace with
  | [] -> ()
  | v :: _ -> Alcotest.failf "ill-formed: %a" Wellformed.pp_violation v);
  r

let test_fig3_tolerates_crash () =
  (* 3 same-priority processes; p2 crashes mid-decide (after 3 of its 8
     statements). The survivors must still decide and agree. *)
  for seed = 0 to 29 do
    let config = Util.uni_config ~quantum:8 [ 1; 1; 1 ] in
    let obj = Uni_consensus.make "c" in
    let outs = Array.make 3 None in
    let bodies =
      Array.init 3 (fun pid () ->
          Eff.invocation "decide" (fun () ->
              outs.(pid) <- Some (Uni_consensus.decide obj (100 + pid))))
    in
    let victims = [ (2, 3) ] in
    let r = run_with_crash ~config ~victims ~seed ~step_limit:10_000 bodies in
    Util.checkb "survivors finished" (Crash.survivors_finished r ~victims:[ 2 ]);
    match (outs.(0), outs.(1)) with
    | Some a, Some b ->
      Util.checkb "agree" (a = b);
      Util.checkb "valid" (a >= 100 && a <= 102)
    | _ -> Alcotest.fail "survivor did not decide"
  done

let test_fig7_tolerates_crashes () =
  (* One process per processor crashes mid-decide; the rest agree. *)
  for seed = 0 to 9 do
    let layout = Layout.uniform ~processors:2 ~per_processor:3 in
    let config = Layout.to_config ~quantum:4000 layout in
    let obj = Multi_consensus.make ~config ~name:"mc" ~consensus_number:2 () in
    let n = 6 in
    let outs = Array.make n None in
    let bodies =
      Array.init n (fun pid () ->
          Eff.invocation "decide" (fun () ->
              outs.(pid) <- Some (Multi_consensus.decide obj ~pid (100 + pid))))
    in
    (* pids 0 (cpu 0) and 3 (cpu 1) crash after 40 own statements *)
    let victims = [ (0, 40); (3, 40) ] in
    let r = run_with_crash ~config ~victims ~seed ~step_limit:4_000_000 bodies in
    Util.checkb "survivors finished" (Crash.survivors_finished r ~victims:[ 0; 3 ]);
    let decisions =
      [ 1; 2; 4; 5 ] |> List.filter_map (fun pid -> outs.(pid)) |> List.sort_uniq compare
    in
    Util.checki "one decision" 1 (List.length decisions)
  done

let test_universal_helps_crashed_announcer () =
  (* A process crashes right after announcing its operation; helpers
     apply it anyway, and survivors keep operating. *)
  for seed = 0 to 19 do
    let config = Util.uni_config ~quantum:3000 [ 1; 1; 1 ] in
    let c = Wf_objects.counter ~name:"c" ~n:3 ~factory:(Wf_objects.uni_factory ()) in
    let results = Array.make 3 (-1) in
    let bodies =
      Array.init 3 (fun pid () ->
          Eff.invocation "incr" (fun () -> results.(pid) <- Wf_objects.incr c ~pid))
    in
    (* p2 executes exactly its announce write (1 statement) then halts *)
    let victims = [ (2, 1) ] in
    let r = run_with_crash ~config ~victims ~seed ~step_limit:100_000 bodies in
    Util.checkb "survivors finished" (Crash.survivors_finished r ~victims:[ 2 ]);
    Util.checkb "survivors got distinct positive counts"
      (results.(0) >= 1 && results.(1) >= 1 && results.(0) <> results.(1))
  done

let test_crash_high_priority_blocks_processor () =
  (* The model's caveat: a crashed READY process at top priority blocks
     its whole processor (Axiom 1), so the run halts without finishing —
     wait-freedom is per-scheduled-process, not an aliveness guarantee. *)
  let config = Util.uni_config ~quantum:8 [ 1; 2 ] in
  let x = Shared.make "x" 0 in
  let bodies =
    Array.init 2 (fun _ () ->
        Eff.invocation "op" (fun () ->
            ignore (Shared.read x);
            Eff.local "l";
            Shared.write x 1))
  in
  let policy = Crash.wrap ~victims:[ (1, 1) ] Policy.highest_pid in
  let r = Engine.run ~step_limit:10_000 ~config ~policy bodies in
  Util.checkb "run halts" (r.stop = Engine.Policy_stopped);
  Util.checkb "low-priority process is stuck" (not r.finished.(0))

let test_renaming_tolerates_crash () =
  (* One-shot renaming stays wait-free and dense among survivors even
     with a claimant crashed mid-acquisition. *)
  for seed = 0 to 19 do
    let config = Util.uni_config ~quantum:3000 [ 1; 1; 1; 1 ] in
    let r = Renaming.make "names" in
    let got = Array.make 4 0 in
    let bodies =
      Array.init 4 (fun pid () ->
          Eff.invocation "acquire" (fun () -> got.(pid) <- Renaming.acquire r ~pid))
    in
    let victims = [ (3, 2) ] in
    let res = run_with_crash ~config ~victims ~seed ~step_limit:100_000 bodies in
    Util.checkb "survivors finished" (Crash.survivors_finished res ~victims:[ 3 ]);
    let names = [ got.(0); got.(1); got.(2) ] |> List.sort compare in
    Util.checkb "distinct" (List.length (List.sort_uniq compare names) = 3);
    (* dense within N even if the crashed claimant consumed a slot *)
    Util.checkb "within 1..4" (List.for_all (fun n -> n >= 1 && n <= 4) names)
  done

let test_fig9_winner_crash_starves_losers () =
  (* Fig. 9's known weakness: if an election winner crashes before
     publishing, the losers spin forever — precisely why Fig. 7 avoids
     elections. (With a fair scheduler and no crashes, E8 shows it
     terminating.) *)
  let layout = Layout.uniform ~processors:1 ~per_processor:2 in
  let config = Layout.to_config ~quantum:3000 layout in
  let obj = Fair_consensus.make ~config ~name:"fc" ~consensus_number:1 in
  let bodies =
    Array.init 2 (fun pid () ->
        Eff.invocation "decide" (fun () ->
            ignore (Fair_consensus.decide obj ~pid (100 + pid))))
  in
  (* p0 wins the election (runs first), then crashes before writing
     Output; p1 spins. *)
  let policy =
    Crash.wrap ~victims:[ (0, 12) ] (Policy.prefer [ 0 ] ~fallback:Policy.first)
  in
  let r = Engine.run ~step_limit:20_000 ~config ~policy bodies in
  Util.checkb "loser spins to the step limit" (r.stop = Engine.Step_limit);
  Util.checkb "loser unfinished" (not r.finished.(1))

let test_crash_drains_guarantee_first () =
  (* A victim whose crash point lands inside an active quantum guarantee
     keeps running until the guarantee drains: protected windows belong
     to the scheduler, and parking the process early would forge a
     quantum violation. *)
  let config = Util.uni_config ~quantum:4 [ 1; 1 ] in
  let work k pid () =
    Eff.invocation "work" (fun () ->
        for _ = 1 to k do
          Eff.local (Printf.sprintf "s%d" pid)
        done)
  in
  let bodies = [| work 6 0; work 6 1 |] in
  (* p1 runs 1 statement, p2 preempts, p1 resumes with a 4-statement
     guarantee (own step 2); its crash point (after=2) is reached inside
     the protected window, so it runs 3 more statements before parking. *)
  let policy =
    Crash.wrap ~victims:[ (0, 2) ] (Policy.scripted ~fallback:Policy.first [ 0; 1; 0 ])
  in
  let r = Engine.run ~step_limit:1_000 ~config ~policy bodies in
  (match Wellformed.check r.trace with
  | [] -> ()
  | v :: _ -> Alcotest.failf "ill-formed: %a" Wellformed.pp_violation v);
  Util.checki "victim drained its guarantee (1 + 4 statements)" 5 r.own_steps.(0);
  Util.checkb "victim parked unfinished" (not r.finished.(0));
  Util.checkb "survivor finished" r.finished.(1);
  Util.checkb "then the run stops" (r.stop = Engine.Policy_stopped)

let test_crash_at_invocation_boundary () =
  (* A crash point equal to the victim's first-invocation length parks
     it between invocations: the first invocation completes, the second
     never begins, and the trace stays well-formed. *)
  let config = Util.uni_config ~quantum:8 [ 1; 1 ] in
  let two_invocations pid () =
    for _ = 1 to 2 do
      Eff.invocation "op" (fun () ->
          for _ = 1 to 3 do
            Eff.local (Printf.sprintf "s%d" pid)
          done)
    done
  in
  let bodies = [| two_invocations 0; two_invocations 1 |] in
  let policy = Crash.wrap ~victims:[ (0, 3) ] (Policy.round_robin ()) in
  let r = Engine.run ~step_limit:1_000 ~config ~policy bodies in
  (match Wellformed.check r.trace with
  | [] -> ()
  | v :: _ -> Alcotest.failf "ill-formed: %a" Wellformed.pp_violation v);
  Util.checki "victim stopped exactly at the boundary" 3 r.own_steps.(0);
  Util.checkb "victim never started invocation 2" (not r.finished.(0));
  Util.checkb "survivor finished" r.finished.(1);
  let victim_invs =
    List.filter
      (function
        | Hwf_sim.Trace.Inv_end { pid = 0; _ } -> true
        | _ -> false)
      (Trace.events r.trace)
  in
  Util.checki "victim's first invocation completed" 1 (List.length victim_invs)

let test_all_victims_stops_run () =
  (* Every process a victim with crash point 0: the policy has no legal
     choice at the first decision and the run stops immediately. *)
  let config = Util.uni_config ~quantum:8 [ 1; 1 ] in
  let obj = Uni_consensus.make "c" in
  let bodies =
    Array.init 2 (fun pid () ->
        Eff.invocation "d" (fun () -> ignore (Uni_consensus.decide obj (100 + pid))))
  in
  let policy = Crash.wrap ~victims:[ (0, 0); (1, 0) ] (Policy.round_robin ()) in
  let r = Engine.run ~step_limit:1_000 ~config ~policy bodies in
  Util.checkb "stops via Policy_stopped" (r.stop = Engine.Policy_stopped);
  Util.checki "no statement executed" 0 (Trace.statements r.trace);
  Util.checkb "nobody finished" (not (Array.exists Fun.id r.finished))

let test_crash_wrapper_is_conservative () =
  (* With no victims the wrapper is the underlying policy. *)
  let config = Util.uni_config ~quantum:8 [ 1; 1 ] in
  let obj = Uni_consensus.make "c" in
  let bodies =
    Array.init 2 (fun pid () ->
        Eff.invocation "d" (fun () -> ignore (Uni_consensus.decide obj pid)))
  in
  let r =
    Engine.run ~config ~policy:(Crash.wrap ~victims:[] (Policy.round_robin ())) bodies
  in
  Util.checkb "all finish" (Array.for_all Fun.id r.finished)

let () =
  Alcotest.run "crash"
    [
      ( "halting failures",
        [
          Alcotest.test_case "fig3 tolerates crash" `Quick test_fig3_tolerates_crash;
          Alcotest.test_case "fig7 tolerates crashes" `Slow test_fig7_tolerates_crashes;
          Alcotest.test_case "universal helps crashed announcer" `Quick
            test_universal_helps_crashed_announcer;
          Alcotest.test_case "high-priority crash blocks processor" `Quick
            test_crash_high_priority_blocks_processor;
          Alcotest.test_case "renaming tolerates crash" `Quick test_renaming_tolerates_crash;
          Alcotest.test_case "fig9 winner crash starves losers" `Quick
            test_fig9_winner_crash_starves_losers;
          Alcotest.test_case "no victims = no-op" `Quick test_crash_wrapper_is_conservative;
          Alcotest.test_case "crash drains guarantee first" `Quick
            test_crash_drains_guarantee_first;
          Alcotest.test_case "crash at invocation boundary" `Quick
            test_crash_at_invocation_boundary;
          Alcotest.test_case "all victims stop the run" `Quick test_all_victims_stops_run;
        ] );
    ]
