(** Known-bad lint subjects: negative controls for every checker rule.

    Used by [test/test_lint.ml] and by [hybridsim lint --corpus] (the
    CI negative-control step): each case must be {e rejected} by the
    linter with a finding carrying the expected rule, proving the
    checkers actually fire. *)

open Hwf_lint

type case = {
  spec : Lint.spec;
  expected_rule : string;  (** e.g. ["atomicity.harness-access"]. *)
}

val peek_in_invocation : unit -> case
val unannounced_poke : unit -> case
val multi_var_stmt : unit -> case
val var_mismatch : unit -> case
val spin_unbounded : unit -> case
val mid_inv_set_priority : unit -> case
val wrong_constant : unit -> case
val quantum_below : unit -> case

val all : unit -> case list

val fires : ?budget:int -> case -> Lint.outcome * bool
(** Lint the case; [true] iff an [Error] finding with the expected rule
    was produced. *)

val scenario_of : case -> Hwf_adversary.Explore.scenario option
(** The case re-posed for {e dynamic} detection: a scenario whose
    [check] reports the planted bug from the run itself (caught
    harness-access raises, trace statement counts vs the declared
    constant, consensus agreement, step-limit non-termination), so the
    randomized samplers ({!Hwf_adversary.Explore.sample}, E20) can
    measure schedules-to-first-bug on it. [None] for
    [mid_inv_set_priority], whose bug the engine rejects by raising —
    there is no result to judge. *)

val scenarios : unit -> (case * Hwf_adversary.Explore.scenario) list
(** All sampleable cases, with their dynamic scenarios. *)
