open Hwf_sim
open Hwf_core
open Hwf_lint

(* Known-bad process bodies, one per checker rule: the linter's
   negative controls. Each case must produce at least one finding with
   the expected rule; a checker that stops firing turns up here before
   it silently waves a real violation through. *)

type case = { spec : Lint.spec; expected_rule : string }

let uni ?(levels = 1) ?(quantum = 8) n =
  Config.uniprocessor ~quantum ~levels
    (List.init n (fun pid -> Proc.make ~pid ~processor:0 ~priority:1 ()))

let base ~name ~config ~make =
  {
    Lint.name;
    config;
    make;
    expect = Checks.Helping;
    min_quantum = 1;
    theorem = "corpus";
    fair_only = false;
    step_limit = 2_000;
  }

(* A peek where a read belongs: the classic harness-escape bug. *)
let peek_in_invocation () =
  let config = uni 1 in
  let make () =
    let x = Shared.make "pk.x" 0 in
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            ignore (Shared.read x);
            ignore (Shared.peek x)));
    |]
  in
  { spec = base ~name:"peek-in-invocation" ~config ~make; expected_rule = "atomicity.harness-access" }

(* A poke between statements: a zero-cost write the scheduler never saw. *)
let unannounced_poke () =
  let config = uni 1 in
  let make () =
    let x = Shared.make "up.x" 0 in
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            ignore (Shared.read x);
            Shared.poke x 7;
            ignore (Shared.read x)));
    |]
  in
  { spec = base ~name:"unannounced-poke" ~config ~make; expected_rule = "atomicity.harness-access" }

(* One announced statement whose execution touches two shared
   variables — a DCAS smuggled into the single-word model. *)
let multi_var_stmt () =
  let config = uni 1 in
  let make () =
    let a = Shared.make "mv.a" 0 in
    let b = Shared.make "mv.b" 0 in
    [|
      (fun () ->
        Eff.invocation "dcas" (fun () ->
            Eff.step (Op.rmw ~var:"mv.a" ~kind:"dcas");
            ignore (Shared.peek a);
            ignore (Shared.peek b)));
    |]
  in
  { spec = base ~name:"multi-var-stmt" ~config ~make; expected_rule = "atomicity.multi-var" }

(* A statement announced as a read of one variable while the body
   accesses a different one. *)
let var_mismatch () =
  let config = uni 1 in
  let make () =
    let b = Shared.make "vm.b" 0 in
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            Eff.step (Op.read "vm.a");
            ignore (Shared.peek b)));
    |]
  in
  { spec = base ~name:"var-mismatch" ~config ~make; expected_rule = "atomicity.var-mismatch" }

(* A spin loop no other process can release: not wait-free, and no
   helping argument applies — the replay budget runs out. *)
let spin_unbounded () =
  let config = uni 1 in
  let make () =
    let flag = Shared.make "sp.flag" 0 in
    [|
      (fun () ->
        Eff.invocation "spin" (fun () ->
            while Shared.read flag = 0 do
              ()
            done));
    |]
  in
  { spec = base ~name:"spin-unbounded" ~config ~make; expected_rule = "loop-bound.unbounded" }

(* A priority change inside an invocation — illegal under Sec. 5's
   "a process's priority cannot change during an object invocation". *)
let mid_inv_set_priority () =
  let config = uni ~levels:2 1 in
  let make () =
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            Eff.local "s";
            Eff.set_priority 2));
    |]
  in
  {
    spec = base ~name:"mid-inv-set-priority" ~config ~make;
    expected_rule = "priority.mid-invocation";
  }

(* Fig. 3 with a wrong declared constant: the derived per-invocation
   count (8) must contradict the declaration (7). *)
let wrong_constant () =
  let config = uni 2 in
  let make () =
    let obj = Uni_consensus.make "wc.cons" in
    [|
      (fun () -> Eff.invocation "decide" (fun () -> ignore (Uni_consensus.decide obj 100)));
      (fun () -> Eff.invocation "decide" (fun () -> ignore (Uni_consensus.decide obj 101)));
    |]
  in
  {
    spec =
      {
        (base ~name:"wrong-constant" ~config ~make) with
        Lint.expect = Checks.Exact (Uni_consensus.statements_per_decide - 1);
        theorem = "Theorem 1 (misdeclared)";
        step_limit = 10_000;
      };
    expected_rule = "quantum-shape.constant";
  }

(* Fig. 3 run at a quantum below the Theorem 1 precondition. *)
let quantum_below () =
  let config = uni ~quantum:4 2 in
  let make () =
    let obj = Uni_consensus.make "qb.cons" in
    [|
      (fun () -> Eff.invocation "decide" (fun () -> ignore (Uni_consensus.decide obj 100)));
      (fun () -> Eff.invocation "decide" (fun () -> ignore (Uni_consensus.decide obj 101)));
    |]
  in
  {
    spec =
      {
        (base ~name:"quantum-below" ~config ~make) with
        Lint.expect = Checks.Exact Uni_consensus.statements_per_decide;
        min_quantum = Bounds.uniprocessor_consensus_quantum;
        theorem = "Theorem 1";
        step_limit = 10_000;
      };
    expected_rule = "quantum-shape.quantum";
  }

let all () =
  [
    peek_in_invocation ();
    unannounced_poke ();
    multi_var_stmt ();
    var_mismatch ();
    spin_unbounded ();
    mid_inv_set_priority ();
    wrong_constant ();
    quantum_below ();
  ]

let fires ?budget (c : case) =
  let o = Lint.run ?budget c.spec in
  ( o,
    List.exists
      (fun (f : Checks.finding) -> f.Checks.rule = c.expected_rule)
      (Lint.errors o) )
