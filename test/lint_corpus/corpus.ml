open Hwf_sim
open Hwf_core
open Hwf_lint

(* Known-bad process bodies, one per checker rule: the linter's
   negative controls. Each case must produce at least one finding with
   the expected rule; a checker that stops firing turns up here before
   it silently waves a real violation through. *)

type case = { spec : Lint.spec; expected_rule : string }

let uni ?(levels = 1) ?(quantum = 8) n =
  Config.uniprocessor ~quantum ~levels
    (List.init n (fun pid -> Proc.make ~pid ~processor:0 ~priority:1 ()))

let base ~name ~config ~make =
  {
    Lint.name;
    config;
    make;
    expect = Checks.Helping;
    min_quantum = 1;
    theorem = "corpus";
    fair_only = false;
    step_limit = 2_000;
  }

(* A peek where a read belongs: the classic harness-escape bug. *)
let peek_in_invocation () =
  let config = uni 1 in
  let make () =
    let x = Shared.make "pk.x" 0 in
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            ignore (Shared.read x);
            ignore (Shared.peek x)));
    |]
  in
  { spec = base ~name:"peek-in-invocation" ~config ~make; expected_rule = "atomicity.harness-access" }

(* A poke between statements: a zero-cost write the scheduler never saw. *)
let unannounced_poke () =
  let config = uni 1 in
  let make () =
    let x = Shared.make "up.x" 0 in
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            ignore (Shared.read x);
            Shared.poke x 7;
            ignore (Shared.read x)));
    |]
  in
  { spec = base ~name:"unannounced-poke" ~config ~make; expected_rule = "atomicity.harness-access" }

(* One announced statement whose execution touches two shared
   variables — a DCAS smuggled into the single-word model. *)
let multi_var_stmt () =
  let config = uni 1 in
  let make () =
    let a = Shared.make "mv.a" 0 in
    let b = Shared.make "mv.b" 0 in
    [|
      (fun () ->
        Eff.invocation "dcas" (fun () ->
            Eff.step (Op.rmw ~var:"mv.a" ~kind:"dcas");
            ignore (Shared.peek a);
            ignore (Shared.peek b)));
    |]
  in
  { spec = base ~name:"multi-var-stmt" ~config ~make; expected_rule = "atomicity.multi-var" }

(* A statement announced as a read of one variable while the body
   accesses a different one. *)
let var_mismatch () =
  let config = uni 1 in
  let make () =
    let b = Shared.make "vm.b" 0 in
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            Eff.step (Op.read "vm.a");
            ignore (Shared.peek b)));
    |]
  in
  { spec = base ~name:"var-mismatch" ~config ~make; expected_rule = "atomicity.var-mismatch" }

(* A spin loop no other process can release: not wait-free, and no
   helping argument applies — the replay budget runs out. *)
let spin_unbounded () =
  let config = uni 1 in
  let make () =
    let flag = Shared.make "sp.flag" 0 in
    [|
      (fun () ->
        Eff.invocation "spin" (fun () ->
            while Shared.read flag = 0 do
              ()
            done));
    |]
  in
  { spec = base ~name:"spin-unbounded" ~config ~make; expected_rule = "loop-bound.unbounded" }

(* A priority change inside an invocation — illegal under Sec. 5's
   "a process's priority cannot change during an object invocation". *)
let mid_inv_set_priority () =
  let config = uni ~levels:2 1 in
  let make () =
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            Eff.local "s";
            Eff.set_priority 2));
    |]
  in
  {
    spec = base ~name:"mid-inv-set-priority" ~config ~make;
    expected_rule = "priority.mid-invocation";
  }

(* Fig. 3 with a wrong declared constant: the derived per-invocation
   count (8) must contradict the declaration (7). *)
let wrong_constant () =
  let config = uni 2 in
  let make () =
    let obj = Uni_consensus.make "wc.cons" in
    [|
      (fun () -> Eff.invocation "decide" (fun () -> ignore (Uni_consensus.decide obj 100)));
      (fun () -> Eff.invocation "decide" (fun () -> ignore (Uni_consensus.decide obj 101)));
    |]
  in
  {
    spec =
      {
        (base ~name:"wrong-constant" ~config ~make) with
        Lint.expect = Checks.Exact (Uni_consensus.statements_per_decide - 1);
        theorem = "Theorem 1 (misdeclared)";
        step_limit = 10_000;
      };
    expected_rule = "quantum-shape.constant";
  }

(* Fig. 3 run at a quantum below the Theorem 1 precondition. *)
let quantum_below () =
  let config = uni ~quantum:4 2 in
  let make () =
    let obj = Uni_consensus.make "qb.cons" in
    [|
      (fun () -> Eff.invocation "decide" (fun () -> ignore (Uni_consensus.decide obj 100)));
      (fun () -> Eff.invocation "decide" (fun () -> ignore (Uni_consensus.decide obj 101)));
    |]
  in
  {
    spec =
      {
        (base ~name:"quantum-below" ~config ~make) with
        Lint.expect = Checks.Exact Uni_consensus.statements_per_decide;
        min_quantum = Bounds.uniprocessor_consensus_quantum;
        theorem = "Theorem 1";
        step_limit = 10_000;
      };
    expected_rule = "quantum-shape.quantum";
  }

let all () =
  [
    peek_in_invocation ();
    unannounced_poke ();
    multi_var_stmt ();
    var_mismatch ();
    spin_unbounded ();
    mid_inv_set_priority ();
    wrong_constant ();
    quantum_below ();
  ]

let fires ?budget (c : case) =
  let o = Lint.run ?budget c.spec in
  ( o,
    List.exists
      (fun (f : Checks.finding) -> f.Checks.rule = c.expected_rule)
      (Lint.errors o) )

(* ---- dynamic detection scenarios (for the randomized samplers) ----

   The linter rejects these cases statically; [scenario_of] re-poses
   each as an [Explore.scenario] whose [check] detects the bug
   {e dynamically}, so [Explore.sample] (and the E20 benchmark) can
   measure schedules-to-first-bug on them. Detection per family:

   - harness-access cases: [Shared.peek]/[poke] raise
     [Invalid_argument] from process code; the wrapped body catches it
     (the engine tolerates the resulting mid-invocation return) and the
     check reports it.
   - [spin_unbounded]: the run hits the step limit — [sample]'s
     [`Fail] verdict catches it; the check also flags unfinished
     processes for [`Ignore] callers.
   - [wrong_constant]: completed invocations are counted against the
     declared per-invocation constant from the trace.
   - [quantum_below]: rebuilt with recorded outputs; the check demands
     agreement on a proposed value — the genuinely schedule-dependent
     case of the corpus.
   - [mid_inv_set_priority]: not sampleable — the engine itself raises
     on the illegal priority change, so no [Engine.result] exists to
     judge; [scenario_of] returns [None]. *)

module Explore = Hwf_adversary.Explore

let scenario_of (c : case) : Explore.scenario option =
  let spec = c.spec in
  let name = "corpus:" ^ spec.Lint.name in
  match spec.Lint.name with
  | "mid-inv-set-priority" -> None
  | "quantum-below" ->
    let make () =
      let obj = Uni_consensus.make "qb.cons" in
      let outs = [| min_int; min_int |] in
      let programs =
        Array.init 2 (fun pid () ->
            Eff.invocation "decide" (fun () ->
                outs.(pid) <- Uni_consensus.decide obj (100 + pid)))
      in
      let check (r : Engine.result) =
        if not (Array.for_all Fun.id r.Engine.finished) then Ok ()
        else if outs.(0) <> outs.(1) then
          Error
            (Printf.sprintf "consensus disagreement: %d vs %d" outs.(0) outs.(1))
        else if outs.(0) <> 100 && outs.(0) <> 101 then
          Error (Printf.sprintf "invalid decision %d" outs.(0))
        else Ok ()
      in
      { Explore.programs; check }
    in
    Some { Explore.name; config = spec.Lint.config; make }
  | _ ->
    let declared =
      match spec.Lint.expect with Checks.Exact k -> Some k | _ -> None
    in
    let make () =
      let violation = ref None in
      let inner = spec.Lint.make () in
      let programs =
        Array.map
          (fun body () ->
            try body ()
            with Invalid_argument msg -> if !violation = None then violation := Some msg)
          inner
      in
      let check (r : Engine.result) =
        match !violation with
        | Some msg -> Error msg
        | None -> (
          match declared with
          | None ->
            if Array.for_all Fun.id r.Engine.finished then Ok ()
            else Error "process failed to finish (possible unbounded loop)"
          | Some k ->
            let counts = Hashtbl.create 8 in
            let bad = ref None in
            Trace.iter
              (fun ev ->
                match ev with
                | Trace.Stmt { pid; inv; _ } ->
                  let key = (pid, inv) in
                  Hashtbl.replace counts key
                    (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
                | Trace.Inv_end { pid; inv; _ } ->
                  let n =
                    Option.value ~default:0 (Hashtbl.find_opt counts (pid, inv))
                  in
                  if n <> k && !bad = None then
                    bad :=
                      Some
                        (Printf.sprintf
                           "invocation %d of p%d executed %d statements, declared %d"
                           inv pid n k)
                | _ -> ())
              r.Engine.trace;
            (match !bad with Some m -> Error m | None -> Ok ()))
      in
      { Explore.programs; check }
    in
    Some { Explore.name; config = spec.Lint.config; make }

let scenarios () =
  List.filter_map
    (fun c -> Option.map (fun s -> (c, s)) (scenario_of c))
    (all ())
