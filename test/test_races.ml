(* The happens-before race certifier: every known-racy corpus case must
   be flagged (with the expected variable), every known-clean case must
   come back empty, under more than one recording schedule — the
   verdict is a property of the workload, not of the interleaving the
   recorder happened to pick. Plus schema/determinism checks for the
   hwf-analyze/1 export. *)

open Hwf_sim
open Hwf_obs
module Corpus = Hwf_race_corpus.Corpus

let policies () = [ ("round-robin", Policy.round_robin ()); ("highest-pid", Policy.highest_pid) ]

let test_racy_flagged () =
  List.iter
    (fun (c : Corpus.case) ->
      List.iter
        (fun (pname, policy) ->
          let r = Corpus.analyze ~policy c in
          if not (Corpus.verdict_matches c r) then
            Alcotest.failf "%s under %s: expected a race on %s, got %a" c.Corpus.name
              pname
              (Option.value ~default:"?" c.Corpus.var)
              Races.pp_report r)
        (policies ()))
    Corpus.racy_cases

let test_clean_pass () =
  List.iter
    (fun (c : Corpus.case) ->
      List.iter
        (fun (pname, policy) ->
          let r = Corpus.analyze ~policy c in
          if Races.racy r then
            Alcotest.failf "%s under %s: expected clean, got %a" c.Corpus.name pname
              Races.pp_report r)
        (policies ()))
    Corpus.clean_cases

(* RMW-RMW pairs never race, including across kinds: synchronization is
   per variable, not per kind. *)
let test_rmw_rmw_synchronizes () =
  let config = (List.hd Corpus.clean_cases).Corpus.config in
  let make () =
    let v = ref 0 in
    Array.init 2 (fun pid () ->
        Eff.invocation "mix" (fun () ->
            Eff.step (Op.rmw ~var:"mix.v" ~kind:(if pid = 0 then "F&A" else "C&S"));
            incr v))
  in
  let r = Engine.run ~step_limit:1_000 ~config ~policy:(Policy.round_robin ()) (make ()) in
  let report = Races.of_trace r.Engine.trace in
  Alcotest.(check bool) "no race" false (Races.racy report)

(* Read-read sharing is not a conflict. *)
let test_read_read_clean () =
  let config = (List.hd Corpus.clean_cases).Corpus.config in
  let make () =
    let x = Shared.make "rr2.x" 42 in
    Array.init 2 (fun _ () ->
        Eff.invocation "load" (fun () -> ignore (Shared.read x)))
  in
  let r = Engine.run ~step_limit:1_000 ~config ~policy:(Policy.round_robin ()) (make ()) in
  let report = Races.of_trace r.Engine.trace in
  Alcotest.(check bool) "no race" false (Races.racy report)

let test_jsonl_shape () =
  let c = List.hd Corpus.racy_cases in
  let r = Corpus.analyze c in
  let out = Jsonl.races_to_string ~config:c.Corpus.config r in
  let lines = String.split_on_char '\n' (String.trim out) in
  (match lines with
  | header :: _ ->
    let expect = Printf.sprintf "\"schema\":\"%s\"" Jsonl.analyze_schema in
    if
      not
        (String.length header >= String.length expect
        && String.sub header 1 (String.length expect) = expect)
    then Alcotest.failf "bad header: %s" header
  | [] -> Alcotest.fail "empty export");
  Alcotest.(check int) "line count" (Races.count r + 2) (List.length lines);
  (* Byte determinism: re-recording and re-exporting gives equal bytes. *)
  let out2 = Jsonl.races_to_string ~config:c.Corpus.config (Corpus.analyze c) in
  Alcotest.(check string) "deterministic bytes" out out2

let () =
  Alcotest.run "races"
    [
      ( "corpus",
        [
          Alcotest.test_case "racy cases flagged" `Quick test_racy_flagged;
          Alcotest.test_case "clean cases pass" `Quick test_clean_pass;
        ] );
      ( "hb",
        [
          Alcotest.test_case "rmw-rmw synchronizes" `Quick test_rmw_rmw_synchronizes;
          Alcotest.test_case "read-read clean" `Quick test_read_read_clean;
        ] );
      ( "jsonl",
        [ Alcotest.test_case "hwf-analyze/1 shape" `Quick test_jsonl_shape ] );
    ]
