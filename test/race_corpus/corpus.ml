open Hwf_sim
open Hwf_objects
open Hwf_obs

(* Known-racy and known-clean workloads: the race certifier's controls.

   Every racy case must be flagged by [Races.of_trace] on a single fair
   schedule — a certifier that stops firing turns up here before it
   silently certifies a real race — and every clean case must come back
   empty. All cases run on a uniprocessor on purpose: the certifier's
   happens-before order deliberately excludes same-processor scheduler
   order (the pick is nondeterministic), so races must be visible even
   when the recorded schedule serialized the accesses. *)

type case = {
  name : string;
  config : Config.t;
  make : unit -> (unit -> unit) array;
  racy : bool;
  var : string option;  (* the variable expected racy, when racy *)
}

let uni n =
  Config.uniprocessor ~quantum:8 ~levels:1
    (List.init n (fun pid -> Proc.make ~pid ~processor:0 ~priority:1 ()))

let case ?var ~racy name make = { name; config = uni 2; make; racy; var }

(* ---- racy: the certifier must flag every one of these ---- *)

(* Write-write: both processes blindly store. *)
let ww_plain =
  case ~racy:true ~var:"ww.x" "ww-plain" (fun () ->
      let x = Shared.make "ww.x" 0 in
      Array.init 2 (fun pid () ->
          Eff.invocation "store" (fun () -> Shared.write x (pid + 1))))

(* Lost update: the classic read-then-write counter increment. *)
let lost_update =
  case ~racy:true ~var:"lu.c" "lost-update" (fun () ->
      let c = Shared.make "lu.c" 0 in
      Array.init 2 (fun _ () ->
          Eff.invocation "incr" (fun () ->
              let v = Shared.read c in
              Shared.write c (v + 1))))

(* A plain-flag handshake: the reader polls an unsynchronized flag. *)
let plain_flag =
  case ~racy:true ~var:"pf.flag" "plain-flag" (fun () ->
      let flag = Shared.make "pf.flag" 0 in
      [|
        (fun () -> Eff.invocation "set" (fun () -> Shared.write flag 1));
        (fun () ->
          Eff.invocation "poll" (fun () ->
              for _ = 1 to 3 do
                ignore (Shared.read flag)
              done));
      |])

(* An RMW on one side does not excuse a plain write on the other. *)
let rmw_vs_write =
  case ~racy:true ~var:"rw.x" "rmw-vs-write" (fun () ->
      let x = Hw_atomic.make "rw.x" 0 in
      [|
        (fun () ->
          Eff.invocation "add" (fun () -> ignore (Hw_atomic.fetch_and_add x 1)));
        (fun () -> Eff.invocation "store" (fun () -> Hw_atomic.write x 7));
      |])

(* Nor a plain read: the fetched value may be mid-update. *)
let rmw_vs_read =
  case ~racy:true ~var:"rr.x" "rmw-vs-read" (fun () ->
      let x = Hw_atomic.make "rr.x" 0 in
      [|
        (fun () ->
          Eff.invocation "add" (fun () -> ignore (Hw_atomic.fetch_and_add x 1)));
        (fun () -> Eff.invocation "load" (fun () -> ignore (Hw_atomic.read x)));
      |])

(* One racy variable hiding among clean RMW-only traffic. The plain
   write precedes the RMWs: had it been sandwiched between them, the
   RMWs' release/acquire chain would transitively order the writes in
   sequential schedules — happens-before certifies traces, and a
   sandwiched access genuinely is ordered in those traces. *)
let needle =
  case ~racy:true ~var:"nd.x" "needle" (fun () ->
      let x = Shared.make "nd.x" 0 in
      let c = Hw_atomic.make "nd.c" 0 in
      Array.init 2 (fun pid () ->
          Eff.invocation "mix" (fun () ->
              Shared.write x pid;
              ignore (Hw_atomic.fetch_and_add c 1);
              ignore (Hw_atomic.fetch_and_add c 1))))

(* The classic read-then-CAS retry loop: in this model the leading
   plain read races with the other process's CAS — reading before
   synchronizing is exactly the pattern the oracle must never commute. *)
let read_then_cas =
  case ~racy:true ~var:"rc.c" "read-then-cas" (fun () ->
      let c = Hw_atomic.make "rc.c" 0 in
      Array.init 2 (fun _ () ->
          Eff.invocation "incr" (fun () ->
              let cur = Hw_atomic.read c in
              ignore (Hw_atomic.cas c ~expected:cur ~desired:(cur + 1)))))

(* ---- clean: the certifier must stay silent ---- *)

(* All traffic through fetch&add: RMWs synchronize. *)
let fai_counter =
  case ~racy:false "fai-counter" (fun () ->
      let c = Hw_atomic.make "fc.c" 0 in
      Array.init 2 (fun _ () ->
          Eff.invocation "incr" (fun () ->
              ignore (Hw_atomic.fetch_and_add c 1);
              ignore (Hw_atomic.fetch_and_add c 1))))

(* A CAS ladder with every access an RMW: p1 moves 0->1, p2 retries
   1->2. RMWs synchronize, so nothing races. *)
let cas_ladder =
  case ~racy:false "cas-ladder" (fun () ->
      let c = Hw_atomic.make "cl.c" 0 in
      [|
        (fun () ->
          Eff.invocation "lift" (fun () ->
              ignore (Hw_atomic.cas c ~expected:0 ~desired:1)));
        (fun () ->
          Eff.invocation "climb" (fun () ->
              let rec go n =
                if n > 0 && not (Hw_atomic.cas c ~expected:1 ~desired:2) then
                  go (n - 1)
              in
              go 3));
      |])

(* Disjoint variables: no conflicting pair at all. *)
let disjoint =
  case ~racy:false "disjoint" (fun () ->
      let a = Shared.make "dj.a" 0 and b = Shared.make "dj.b" 0 in
      [|
        (fun () ->
          Eff.invocation "left" (fun () ->
              Shared.write a 1;
              ignore (Shared.read a)));
        (fun () ->
          Eff.invocation "right" (fun () ->
              Shared.write b 2;
              ignore (Shared.read b)));
      |])

(* Handoff through an RMW flag: both sides synchronize on the flag. *)
let rmw_flag =
  case ~racy:false "rmw-flag" (fun () ->
      let flag = Hw_atomic.make "rf.flag" 0 in
      [|
        (fun () ->
          Eff.invocation "set" (fun () ->
              ignore (Hw_atomic.cas flag ~expected:0 ~desired:1)));
        (fun () ->
          Eff.invocation "poll" (fun () ->
              for _ = 1 to 3 do
                ignore (Hw_atomic.cas flag ~expected:1 ~desired:1)
              done));
      |])

let racy_cases =
  [ ww_plain; lost_update; plain_flag; rmw_vs_write; rmw_vs_read; needle; read_then_cas ]

let clean_cases = [ fai_counter; cas_ladder; disjoint; rmw_flag ]
let all = racy_cases @ clean_cases

let analyze ?(policy = Policy.round_robin ()) (c : case) =
  let result = Engine.run ~step_limit:5_000 ~config:c.config ~policy (c.make ()) in
  Races.of_trace result.Engine.trace

let verdict_matches (c : case) (r : Races.report) =
  Races.racy r = c.racy
  &&
  match c.var with
  | None -> true
  | Some v -> List.mem v r.Races.racy_vars
