(** Known-racy and known-clean workloads: the race certifier's controls.

    Every case in {!racy_cases} must be flagged by
    [Hwf_obs.Races.of_trace] on a single fair schedule, and every case
    in {!clean_cases} must come back empty. All cases are
    uniprocessor on purpose: the certifier's happens-before order
    excludes same-processor scheduler order, so races must be visible
    even though the recorded schedule serialized the accesses. Used by
    [test/test_races.ml] and the [hybridsim analyze --corpus] CI
    negative control. *)

open Hwf_sim
open Hwf_obs

type case = {
  name : string;
  config : Config.t;
  make : unit -> (unit -> unit) array;
      (** Fresh shared state per call, as everywhere. *)
  racy : bool;  (** Expected verdict. *)
  var : string option;
      (** When racy, a variable that must appear in [racy_vars]. *)
}

val racy_cases : case list
(** At least six distinct race shapes: write-write, lost update, plain
    flag handshake, RMW vs plain write, RMW vs plain read, a racy
    variable hidden among clean RMW traffic, read-then-CAS. *)

val clean_cases : case list
(** RMW-only counters and ladders, disjoint variables, an RMW flag
    handshake. *)

val all : case list
(** [racy_cases @ clean_cases]. *)

val analyze : ?policy:Policy.t -> case -> Races.report
(** Run the case once (default: round-robin, step limit 5000) and
    certify the recorded trace. *)

val verdict_matches : case -> Races.report -> bool
(** Did the report agree with the case's expectation (including the
    expected racy variable, when given)? *)
