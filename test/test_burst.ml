open Hwf_sim

(* The differential suite behind the engine's hot-path machinery
   (quantum-burst batching, schedulable-list caching, dirty-queue view
   refresh): every run must be byte-identical to the self-checking
   reference engine, which disables all of it and audits the
   incremental structures against a naive rescan. The matrix crosses
   the lint corpus's workloads (the repo's nastiest subjects — harness
   misuse, spins, priority churn) with fault plans and every policy
   family, including the randomized samplers whose RNG streams the
   burst contract must not perturb. Plus direct unit tests for the
   packed trace encoding and the observer lifecycle. *)

(* ---- differential: batched/cached engine vs self-checking reference ---- *)

type capture = {
  trace_bytes : string;
  stop : Engine.stop_reason;
  finished : bool array;
  own_steps : int array;
  halted : bool array;
}

(* Some corpus subjects raise out of the run (harness misuse the engine
   rejects): the two engines must then raise identically, so capture
   the exception as an outcome rather than failing the harness. *)
let capture ~self_check ~step_limit ~plan ~config ~policy make =
  match
    Hwf_faults.Inject.run ~step_limit ~self_check ~plan ~config ~policy (make ())
  with
  | r ->
    Ok
      {
        trace_bytes = Hwf_obs.Jsonl.trace_to_string r.Engine.trace;
        stop = r.Engine.stop;
        finished = r.Engine.finished;
        own_steps = r.Engine.own_steps;
        halted = r.Engine.halted;
      }
  | exception e -> Error (Printexc.to_string e)

let same_capture label a b =
  match (a, b) with
  | Error ea, Error eb -> Util.check Alcotest.string (label ^ ": exception") ea eb
  | Ok a, Ok b ->
    Util.check Alcotest.string (label ^ ": trace bytes") a.trace_bytes b.trace_bytes;
    Util.checkb (label ^ ": stop") (a.stop = b.stop);
    Util.checkb (label ^ ": finished") (a.finished = b.finished);
    Util.checkb (label ^ ": own_steps") (a.own_steps = b.own_steps);
    Util.checkb (label ^ ": halted") (a.halted = b.halted)
  | Ok _, Error e ->
    Alcotest.failf "%s: batched run succeeded, reference raised %s" label e
  | Error e, Ok _ ->
    Alcotest.failf "%s: batched run raised %s, reference succeeded" label e

let differential label ~step_limit ~plan ~config ~policy make =
  let fast = capture ~self_check:false ~step_limit ~plan ~config ~policy make in
  let slow = capture ~self_check:true ~step_limit ~plan ~config ~policy make in
  same_capture label fast slow

let policies =
  [
    ("first", Policy.first);
    ("round-robin", Policy.round_robin ());
    ("by-priority", Policy.by_priority);
    ("random", Policy.random ~seed:11);
    ("naive", Hwf_adversary.Randsched.policy Hwf_adversary.Randsched.Naive ~seed:3);
    ( "pct",
      Hwf_adversary.Randsched.policy
        (Hwf_adversary.Randsched.Pct { depth = 3 })
        ~seed:5 );
    ("pos", Hwf_adversary.Randsched.policy Hwf_adversary.Randsched.Pos ~seed:7);
    ("surw", Hwf_adversary.Randsched.policy Hwf_adversary.Randsched.Surw ~seed:9);
  ]

let plans =
  [
    Hwf_faults.Plan.none;
    Hwf_faults.Plan.crash_at ~victim:0 ~after:3;
    Hwf_faults.Plan.with_axiom2
      (Hwf_faults.Plan.Windows { period = 12; off = 5; phase = 0 })
      Hwf_faults.Plan.none;
    Hwf_faults.Plan.with_cost Hwf_faults.Plan.Slow Hwf_faults.Plan.none;
  ]

(* Every corpus workload under every policy, fault-free: the full
   batching + caching surface. *)
let test_corpus_policies () =
  List.iter
    (fun (case : Hwf_lint_corpus.Corpus.case) ->
      let spec = case.spec in
      List.iter
        (fun (pname, policy) ->
          differential
            (Printf.sprintf "%s/%s" spec.Hwf_lint.Lint.name pname)
            ~step_limit:spec.Hwf_lint.Lint.step_limit ~plan:Hwf_faults.Plan.none
            ~config:spec.Hwf_lint.Lint.config ~policy spec.Hwf_lint.Lint.make)
        policies)
    (Hwf_lint_corpus.Corpus.all ())

(* Every corpus workload under every fault plan: the hooks that disable
   batching (and, for crashes, list caching) still go through the
   incremental view machinery, which must agree with the naive scan. *)
let test_corpus_faults () =
  List.iter
    (fun (case : Hwf_lint_corpus.Corpus.case) ->
      let spec = case.spec in
      List.iter
        (fun (plan : Hwf_faults.Plan.t) ->
          List.iter
            (fun (pname, policy) ->
              differential
                (Printf.sprintf "%s/%s/%s" spec.Hwf_lint.Lint.name plan.label pname)
                ~step_limit:spec.Hwf_lint.Lint.step_limit ~plan
                ~config:spec.Hwf_lint.Lint.config ~policy spec.Hwf_lint.Lint.make)
            [ ("random", Policy.random ~seed:11);
              ( "pct",
                Hwf_adversary.Randsched.policy
                  (Hwf_adversary.Randsched.Pct { depth = 3 })
                  ~seed:5 );
              ("surw", Hwf_adversary.Randsched.policy Hwf_adversary.Randsched.Surw ~seed:9)
            ])
        plans)
    (Hwf_lint_corpus.Corpus.all ())

(* The E19-shaped stress layout: many processes, two priority bands,
   multiple processors — the singleton-level burst mode and the
   version-restore path of the guarantee grant/drain pair fire here in
   volume, which the tiny corpus configs cannot provide. *)
let test_two_band_stress () =
  List.iter
    (fun (n, processors) ->
      let layout =
        List.init n (fun i ->
            Proc.make ~pid:i ~processor:(i mod processors)
              ~priority:(1 + (i / processors mod 2))
              ())
      in
      let config = Config.make ~quantum:6 ~processors ~levels:2 layout in
      let make () =
        Array.init n (fun _ () ->
            for _ = 1 to 12 do
              Eff.invocation "w" (fun () ->
                  for _ = 1 to 8 do
                    Eff.local "s"
                  done)
            done)
      in
      List.iter
        (fun (pname, policy) ->
          differential
            (Printf.sprintf "two-band n=%d p=%d/%s" n processors pname)
            ~step_limit:1_000_000 ~plan:Hwf_faults.Plan.none ~config ~policy make)
        policies)
    [ (16, 1); (16, 4); (48, 2) ]

(* ---- packed trace encoding ---- *)

let mk_config n =
  Config.make ~quantum:4 ~processors:1 ~levels:2
    (List.init n (fun i -> Proc.make ~pid:i ~processor:0 ~priority:1 ()))

let sample_events =
  [
    Trace.Inv_begin { pid = 0; inv = 0; label = "work" };
    Trace.Stmt { idx = 0; pid = 0; op = Op.local "s"; inv = 0; cost = 1 };
    Trace.Stmt { idx = 1; pid = 0; op = Op.read "x"; inv = 0; cost = 3 };
    Trace.Note { pid = 1; text = "a note" };
    Trace.Set_priority { pid = 1; priority = 2 };
    Trace.Axiom2_gate { at = 2; active = false };
    Trace.Stmt { idx = 2; pid = 1; op = Op.write "x"; inv = 0; cost = 2 };
    Trace.Inv_end { pid = 0; inv = 0; label = "work" };
    Trace.Axiom2_gate { at = 3; active = true };
    (* repeats: the op and label intern tables must hand back the same
       decoded values for re-used ids *)
    Trace.Inv_begin { pid = 0; inv = 1; label = "work" };
    Trace.Stmt { idx = 3; pid = 0; op = Op.read "x"; inv = 1; cost = 1 };
    Trace.Stmt { idx = 4; pid = 0; op = Op.rmw ~var:"x" ~kind:"cas"; inv = 1; cost = 1 };
    Trace.Note { pid = 0; text = "a note" };
    Trace.Inv_end { pid = 0; inv = 1; label = "work" };
  ]

let test_packed_round_trip () =
  let t = Trace.create (mk_config 2) in
  List.iter (Trace.add t) sample_events;
  Util.checkb "events round-trip" (Trace.events t = sample_events);
  Util.checki "length" (List.length sample_events) (Trace.length t);
  Util.checki "statements" 5 (Trace.statements t);
  Util.checki "time" 8 (Trace.time t);
  Util.checki "own p0" 4 (Trace.own_statements t 0);
  Util.checki "own p1" 1 (Trace.own_statements t 1);
  (* iter and fold decode the same records as events *)
  let via_iter = ref [] in
  Trace.iter (fun e -> via_iter := e :: !via_iter) t;
  Util.checkb "iter agrees" (List.rev !via_iter = sample_events);
  let n = Trace.fold (fun acc _ -> acc + 1) 0 t in
  Util.checki "fold agrees" (Trace.length t) n;
  (* reset empties the trace but keeps the buffer usable *)
  Trace.reset t;
  Util.checkb "reset: empty" (Trace.events t = []);
  Util.checki "reset: statements" 0 (Trace.statements t);
  Util.checki "reset: own" 0 (Trace.own_statements t 0);
  List.iter (Trace.add t) sample_events;
  Util.checkb "reusable after reset" (Trace.events t = sample_events)

let test_packed_observer_dispatch () =
  (* statements reach on_stmt (fields, no record); everything else
     reaches on_event *)
  let t = Trace.create (mk_config 2) in
  let stmts = ref 0 and others = ref [] in
  Trace.set_sink t
    {
      Trace.on_stmt = (fun ~idx:_ ~pid:_ ~op:_ ~inv:_ ~cost:_ -> incr stmts);
      on_event = (fun e -> others := e :: !others);
    };
  List.iter (Trace.add t) sample_events;
  Util.checki "on_stmt calls" 5 !stmts;
  Util.checki "on_event calls" (List.length sample_events - 5) (List.length !others);
  Util.checkb "on_event never sees Stmt"
    (List.for_all (function Trace.Stmt _ -> false | _ -> true) !others)

(* ---- observer lifecycle ---- *)

let two_procs () = mk_config 2

let bodies k =
  Array.init 2 (fun _ () ->
      for _ = 1 to k do
        Eff.invocation "w" (fun () -> Eff.local "s")
      done)

let test_observer_detached_after_run () =
  let trace_buf = Trace.create (two_procs ()) in
  let calls = ref 0 in
  let r =
    Engine.run ~trace_buf
      ~observer:(fun _ -> incr calls)
      ~config:(two_procs ()) ~policy:Policy.first (bodies 3)
  in
  Util.checkb "run finished" (r.Engine.stop = Engine.All_finished);
  Util.checkb "observer saw events" (!calls > 0);
  let seen = !calls in
  Trace.add r.Engine.trace (Trace.Note { pid = 0; text = "post-run" });
  Util.checki "observer detached after normal return" seen !calls

let test_observer_detached_after_raise () =
  let trace_buf = Trace.create (two_procs ()) in
  let calls = ref 0 in
  let boom =
    [|
      (fun () -> Eff.invocation "w" (fun () -> Eff.local "s"));
      (fun () -> failwith "boom");
    |]
  in
  (match
     Engine.run ~trace_buf
       ~observer:(fun _ -> incr calls)
       ~config:(two_procs ()) ~policy:Policy.first boom
   with
  | _ -> Alcotest.fail "expected the body exception to propagate"
  | exception Failure msg -> Util.check Alcotest.string "exn" "boom" msg);
  let seen = !calls in
  Trace.add trace_buf (Trace.Note { pid = 0; text = "post-raise" });
  Util.checki "observer detached after exception" seen !calls

let test_trace_buf_reuse () =
  (* The same trace buffer serves consecutive runs (the Explore arena
     pattern): each run resets it and yields that run's events only. *)
  let trace_buf = Trace.create (two_procs ()) in
  let r1 =
    Engine.run ~trace_buf ~config:(two_procs ()) ~policy:Policy.first (bodies 2)
  in
  let s1 = Trace.statements r1.Engine.trace in
  let r2 =
    Engine.run ~trace_buf ~config:(two_procs ()) ~policy:Policy.first (bodies 5)
  in
  Util.checkb "same buffer" (r1.Engine.trace == r2.Engine.trace);
  Util.checki "second run's statements only" (5 * s1 / 2) (Trace.statements r2.Engine.trace)

let test_observer_sink_exclusive () =
  let sink =
    { Trace.on_stmt = (fun ~idx:_ ~pid:_ ~op:_ ~inv:_ ~cost:_ -> ()); on_event = ignore }
  in
  match
    Engine.run
      ~observer:(fun _ -> ())
      ~sink ~config:(two_procs ()) ~policy:Policy.first (bodies 1)
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* sink-based metrics equal observer-based metrics equal of_trace *)
let test_metrics_sink_equivalence () =
  let config = mk_config 4 in
  let make () =
    Array.init 4 (fun _ () ->
        for _ = 1 to 6 do
          Eff.invocation "w" (fun () ->
              for _ = 1 to 4 do
                Eff.local "s"
              done)
        done)
  in
  let via_sink =
    let c = Hwf_obs.Metrics.collector config in
    let r =
      Engine.run ~sink:(Hwf_obs.Metrics.sink c) ~config
        ~policy:(Policy.random ~seed:5) (make ())
    in
    ignore r;
    Hwf_obs.Metrics.finish c
  in
  let via_observer, trace =
    let c = Hwf_obs.Metrics.collector config in
    let r =
      Engine.run ~observer:(Hwf_obs.Metrics.feed c) ~config
        ~policy:(Policy.random ~seed:5) (make ())
    in
    (Hwf_obs.Metrics.finish c, r.Engine.trace)
  in
  let via_trace = Hwf_obs.Metrics.of_trace trace in
  Util.checkb "sink = observer" (via_sink = via_observer);
  Util.checkb "sink = of_trace" (via_sink = via_trace)

let () =
  Alcotest.run "burst"
    [
      ( "differential",
        [
          Alcotest.test_case "corpus x policies" `Quick test_corpus_policies;
          Alcotest.test_case "corpus x fault plans" `Quick test_corpus_faults;
          Alcotest.test_case "two-band stress layouts" `Quick test_two_band_stress;
        ] );
      ( "packed trace",
        [
          Alcotest.test_case "round trip" `Quick test_packed_round_trip;
          Alcotest.test_case "observer dispatch" `Quick test_packed_observer_dispatch;
        ] );
      ( "observer lifecycle",
        [
          Alcotest.test_case "detached after run" `Quick test_observer_detached_after_run;
          Alcotest.test_case "detached after raise" `Quick
            test_observer_detached_after_raise;
          Alcotest.test_case "trace_buf reuse" `Quick test_trace_buf_reuse;
          Alcotest.test_case "observer/sink exclusive" `Quick
            test_observer_sink_exclusive;
          Alcotest.test_case "metrics sink equivalence" `Quick
            test_metrics_sink_equivalence;
        ] );
    ]
