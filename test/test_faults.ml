open Hwf_sim
open Hwf_faults

(* The fault-injection subsystem: plan sweeps, the wait-freedom
   certifier, its negative control, and shrink-on-faulted-runs. *)

let test_fig3_exhaustive_sweep () =
  (* Fig. 3 takes exactly 8 own statements per process; the exhaustive
     single-victim sweep is 3 victims x crash points 0..8, and every
     plan (plus chaos) must certify. *)
  let subject = Suite.fig3 () in
  let solo = Certify.solo_own_steps subject in
  Alcotest.(check (array int)) "solo = 8 each" [| 8; 8; 8 |] solo;
  let crash = Sweep.crash_points ~victims:[ 0; 1; 2 ] ~solo () in
  Util.checki "27 crash plans" 27 (List.length crash);
  let report = Certify.certify subject (Plan.none :: crash) in
  Util.checkb "certified" (Certify.certified report);
  Util.checki "all plans passed" 28 report.Certify.passed;
  Util.checki "worst own-steps is the Thm 1 bound" 8 report.Certify.worst_own_steps

let test_campaigns_certify () =
  (* The standard quick campaign certifies every positive subject. *)
  List.iter
    (fun subject ->
      let plans = Suite.campaign ~quick:true ~seed:41 subject in
      let report = Certify.certify subject plans in
      if not (Certify.certified report) then
        Alcotest.failf "%a" Certify.pp_report report)
    (Suite.positive_subjects ~seed:41 ())

let test_negative_control () =
  (* Suspending Axiom 2 under the hand-derived schedule must produce a
     disagreement — deterministically — and the very same subject under
     the fault-free plan must pass. This is the certifier's teeth. *)
  let subject = Suite.negative () in
  let report = Certify.certify subject [ Suite.negative_plan ] in
  Util.checkb "rejected" (not (Certify.certified report));
  (match report.Certify.failures with
  | [ f ] ->
    Util.checkb "failure is a disagreement" (Util.contains f.Certify.message "disagreement");
    (* the shrunk schedule still reproduces the failure on replay *)
    (match Certify.replay_judge subject Suite.negative_plan f.Certify.schedule with
    | Certify.Fail _ -> ()
    | Certify.Pass _ -> Alcotest.fail "shrunk schedule does not reproduce");
    Util.checkb "shrunk no longer than original"
      (List.length f.Certify.schedule <= f.Certify.shrunk_from)
  | fs -> Alcotest.failf "expected exactly one failure, got %d" (List.length fs));
  let clean = Certify.certify subject [ Plan.none ] in
  Util.checkb "same subject passes with Axiom 2 enforced" (Certify.certified clean)

let test_determinism () =
  (* Same subject, same seed, same plans => structurally equal reports. *)
  let subject = Suite.fig5 () in
  let plans = Suite.campaign ~quick:true ~seed:7 subject in
  let plans' = Suite.campaign ~quick:true ~seed:7 subject in
  Util.checkb "same plans" (plans = plans');
  let r1 = Certify.certify subject plans in
  let r2 = Certify.certify subject plans in
  Util.checkb "same report" (r1 = r2)

let test_blocked_by_victim_excuse () =
  (* A victim of strictly higher priority parked mid-invocation blocks
     its processor forever (Axiom 1); the certifier must excuse the
     starved survivor (Pass { blocked = true }) rather than blame the
     algorithm. *)
  let config = Util.uni_config ~quantum:8 [ 1; 2 ] in
  let work k pid () =
    Eff.invocation "work" (fun () ->
        for _ = 1 to k do
          Eff.local (Printf.sprintf "s%d" pid)
        done)
  in
  let make () =
    Certify.
      {
        programs = [| work 3 0; work 3 1 |];
        check = (fun ~survivors:_ _ -> Ok ());
      }
  in
  let subject =
    Certify.
      {
        name = "blocked";
        config;
        policy = (fun () -> Policy.by_priority);
        make;
        step_bound = 3;
        bound_desc = "3";
        step_limit = 1_000;
      }
  in
  let plan = Plan.crash_at ~victim:1 ~after:1 in
  let verdict, result, _ = Certify.run_plan subject plan in
  Util.checkb "victim parked" result.Engine.halted.(1);
  Util.checkb "run ends All_halted" (result.Engine.stop = Engine.All_halted);
  (match verdict with
  | Certify.Pass { blocked = true } -> ()
  | Certify.Pass { blocked = false } -> Alcotest.fail "survivor not seen as blocked"
  | Certify.Fail m -> Alcotest.failf "expected excused pass, got: %s" m);
  (* The same shape with EQUAL priorities is never excused; with the
     victim parked the survivor can run, so it must finish - and does. *)
  let config_eq = Util.uni_config ~quantum:8 [ 1; 1 ] in
  let subject_eq = Certify.{ subject with config = config_eq } in
  match Certify.run_plan subject_eq plan with
  | Certify.Pass { blocked = false }, result, _ ->
    Util.checkb "equal-priority survivor finished" result.Engine.finished.(0)
  | Certify.Pass { blocked = true }, _, _ -> Alcotest.fail "equal priority wrongly excused"
  | Certify.Fail m, _, _ -> Alcotest.failf "equal-priority run failed: %s" m

let test_shrink_by_minimizes () =
  (* shrink_by against an arbitrary predicate: minimal failing sublist. *)
  let fails s = List.mem 3 s && List.mem 5 s in
  let shrunk = Hwf_adversary.Shrink.shrink_by ~fails [ 1; 2; 3; 4; 5; 6 ] in
  Alcotest.(check (list int)) "minimal" [ 3; 5 ] shrunk;
  (* non-failing input returned unchanged *)
  Alcotest.(check (list int)) "unchanged" [ 1; 2 ] (Hwf_adversary.Shrink.shrink_by ~fails [ 1; 2 ])

let test_jitter_cost_deterministic_and_clamped () =
  let h1 = Inject.jitter_hash ~seed:5 ~step:17 ~pid:2 in
  let h2 = Inject.jitter_hash ~seed:5 ~step:17 ~pid:2 in
  Util.checki "hash deterministic" h1 h2;
  Util.checkb "hash non-negative" (h1 >= 0);
  (* A faulted fig3-time run under Jitter costs is well-formed and
     replayable: identical decision sequences give identical traces. *)
  let subject = Suite.fig3_time () in
  let plan = Plan.(with_cost (Jitter 5) (crash_at ~victim:0 ~after:4)) in
  let _, r1, sched = Certify.run_plan subject plan in
  let inst = subject.Certify.make () in
  let r2 =
    Inject.replay ~step_limit:subject.Certify.step_limit ~plan
      ~config:subject.Certify.config ~schedule:sched inst.Certify.programs
  in
  Alcotest.(check (array int)) "replay reproduces own_steps" r1.Engine.own_steps
    r2.Engine.own_steps;
  Util.checkb "replay reproduces stop" (r1.Engine.stop = r2.Engine.stop)

let test_plan_composition () =
  let p =
    Plan.(
      layer (crash_at ~victim:0 ~after:2)
        (with_axiom2 (Windows { period = 10; off = 3; phase = 0 })
           (with_cost Slow (crash_at ~victim:1 ~after:0))))
  in
  Util.checki "crashes compose" 2 (List.length p.Plan.crashes);
  Util.checkb "cost kept" (p.Plan.cost = Plan.Slow);
  (match p.Plan.axiom2 with Plan.Windows _ -> () | _ -> Alcotest.fail "axiom2 lost");
  Util.checkb "label mentions crash" (Util.contains (Plan.to_string p) "crash");
  (* chaos plans never weaken Axiom 2 *)
  List.iter
    (fun seed ->
      let c = Plan.chaos ~seed ~n:4 ~max_after:10 in
      Util.checkb "chaos keeps axiom2" (c.Plan.axiom2 = Plan.Enforced))
    [ 0; 1; 2; 3; 4 ]

let () =
  Alcotest.run "faults"
    [
      ( "certifier",
        [
          Alcotest.test_case "fig3 exhaustive sweep" `Quick test_fig3_exhaustive_sweep;
          Alcotest.test_case "campaigns certify" `Slow test_campaigns_certify;
          Alcotest.test_case "negative control rejected" `Quick test_negative_control;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "blocked-by-victim excuse" `Quick test_blocked_by_victim_excuse;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "shrink_by" `Quick test_shrink_by_minimizes;
          Alcotest.test_case "jitter determinism / replay" `Quick
            test_jitter_cost_deterministic_and_clamped;
          Alcotest.test_case "plan composition" `Quick test_plan_composition;
        ] );
    ]
