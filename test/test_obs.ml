(* The observability layer: JSONL schema stability (golden files),
   byte-determinism of exports across --jobs settings (the S4
   acceptance criterion), and agreement between live observer-fed
   metrics and post-hoc reconstruction from a trace.

   Promoting new goldens after an intentional schema change:
     HWF_GOLDEN_PROMOTE=1 dune exec test/test_obs.exe
   from the repository root, then review the diff of test/golden/. *)

open Hwf_sim
open Hwf_workload
open Hwf_adversary

(* The canonical demo run shared with `bench/main.exe --trace-out`:
   Fig. 3 consensus, quantum 8, two equal-priority processes, first-fit
   policy — fully deterministic, no seeds involved. *)
let demo_run () =
  let layout = [ (0, 1); (0, 1) ] in
  let config = Layout.to_config ~quantum:8 layout in
  let b = Scenarios.consensus ~name:"golden" ~impl:Scenarios.Fig3 ~quantum:8 ~layout in
  let inst = b.Scenarios.scenario.Explore.make () in
  let collector = Hwf_obs.Metrics.collector config in
  let r =
    Engine.run ~step_limit:1_000_000
      ~observer:(Hwf_obs.Metrics.feed collector)
      ~config ~policy:Policy.first inst.Explore.programs
  in
  (r, collector)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_trace = "golden/fig3_trace.jsonl"
let golden_metrics = "golden/fig3_metrics.jsonl"

let test_golden_trace () =
  let r, _ = demo_run () in
  Alcotest.(check string)
    "trace export matches the golden file (schema hwf-trace/1)"
    (read_file golden_trace)
    (Hwf_obs.Jsonl.trace_to_string r.Engine.trace)

let test_golden_metrics () =
  let _, collector = demo_run () in
  Alcotest.(check string)
    "metrics export matches the golden file (schema hwf-metrics/1)"
    (read_file golden_metrics)
    (Hwf_obs.Jsonl.metrics_to_string (Hwf_obs.Metrics.finish collector))

(* S4: the CLI's explore export path — replay of a schedule-deterministic
   decision sequence — must produce identical bytes whatever the worker
   count of the search that preceded it. *)
let test_jobs_determinism () =
  let b =
    Scenarios.consensus ~name:"golden" ~impl:Scenarios.Fig3 ~quantum:8
      ~layout:[ (0, 1); (0, 1) ]
  in
  let export jobs =
    let o = Explore.explore ~max_runs:5_000 ~jobs b.Scenarios.scenario in
    let schedule =
      match o.Explore.counterexample with
      | Some c -> c.Explore.decisions
      | None -> []
    in
    let result, _ = Schedule.replay b.Scenarios.scenario schedule in
    let m = Hwf_obs.Metrics.of_trace result.Engine.trace in
    let m =
      Hwf_obs.Metrics.with_harness m
        [
          ("explore.runs", o.Explore.runs);
          ("explore.exhaustive", if o.Explore.exhaustive then 1 else 0);
        ]
    in
    ( Hwf_obs.Jsonl.trace_to_string result.Engine.trace,
      Hwf_obs.Jsonl.metrics_to_string m )
  in
  let t1, m1 = export 1 in
  let t4, m4 = export 4 in
  Alcotest.(check string) "trace bytes identical for --jobs 1 vs --jobs 4" t1 t4;
  Alcotest.(check string) "metrics bytes identical for --jobs 1 vs --jobs 4" m1 m4

(* Live collection through the observer hook and post-hoc reconstruction
   from the recorded trace must agree exactly. *)
let test_feed_vs_of_trace () =
  let r, collector = demo_run () in
  Alcotest.(check string)
    "observer-fed metrics equal Metrics.of_trace"
    (Hwf_obs.Jsonl.metrics_to_string (Hwf_obs.Metrics.of_trace r.Engine.trace))
    (Hwf_obs.Jsonl.metrics_to_string (Hwf_obs.Metrics.finish collector))

(* The escaper: variable names with JSON-hostile characters must still
   produce parseable lines (checked here by exact expected output). *)
let test_escaping () =
  let config = Util.uni_config ~quantum:4 [ 1 ] in
  let x = Shared.make "quote\"back\\slash\ttab" 0 in
  let body () = Eff.invocation "op" (fun () -> ignore (Shared.read x)) in
  let r = Engine.run ~config ~policy:Policy.first [| body |] in
  let s = Hwf_obs.Jsonl.trace_to_string r.Engine.trace in
  Alcotest.(check bool)
    "escaped variable name appears"
    true
    (let sub = {|"var":"quote\"back\\slash\ttab"|} in
     let rec find i =
       if i + String.length sub > String.length s then false
       else if String.sub s i (String.length sub) = sub then true
       else find (i + 1)
     in
     find 0)

let promote () =
  let r, collector = demo_run () in
  Hwf_obs.Jsonl.write_trace ~path:("test/" ^ golden_trace) r.Engine.trace;
  Hwf_obs.Jsonl.write_metrics
    ~path:("test/" ^ golden_metrics)
    (Hwf_obs.Metrics.finish collector);
  print_endline "promoted test/golden/fig3_{trace,metrics}.jsonl"

let () =
  if Sys.getenv_opt "HWF_GOLDEN_PROMOTE" <> None then promote ()
  else
    Alcotest.run "obs"
      [
        ( "jsonl",
          [
            Alcotest.test_case "golden trace" `Quick test_golden_trace;
            Alcotest.test_case "golden metrics" `Quick test_golden_metrics;
            Alcotest.test_case "jobs determinism (S4)" `Quick test_jobs_determinism;
            Alcotest.test_case "feed vs of_trace" `Quick test_feed_vs_of_trace;
            Alcotest.test_case "escaping" `Quick test_escaping;
          ] );
      ]
