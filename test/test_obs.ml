(* The observability layer: JSONL schema stability (golden files),
   byte-determinism of exports across --jobs settings (the S4
   acceptance criterion), and agreement between live observer-fed
   metrics and post-hoc reconstruction from a trace.

   Promoting new goldens after an intentional schema change:
     HWF_GOLDEN_PROMOTE=1 dune exec test/test_obs.exe
   from the repository root, then review the diff of test/golden/. *)

open Hwf_sim
open Hwf_workload
open Hwf_adversary

(* The canonical demo run shared with `bench/main.exe --trace-out`:
   Fig. 3 consensus, quantum 8, two equal-priority processes, first-fit
   policy — fully deterministic, no seeds involved. *)
let demo_run () =
  let layout = [ (0, 1); (0, 1) ] in
  let config = Layout.to_config ~quantum:8 layout in
  let b = Scenarios.consensus ~name:"golden" ~impl:Scenarios.Fig3 ~quantum:8 ~layout in
  let inst = b.Scenarios.scenario.Explore.make () in
  let collector = Hwf_obs.Metrics.collector config in
  let r =
    Engine.run ~step_limit:1_000_000
      ~observer:(Hwf_obs.Metrics.feed collector)
      ~config ~policy:Policy.first inst.Explore.programs
  in
  (r, collector)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_trace = "golden/fig3_trace.jsonl"
let golden_metrics = "golden/fig3_metrics.jsonl"

let test_golden_trace () =
  let r, _ = demo_run () in
  Alcotest.(check string)
    "trace export matches the golden file (schema hwf-trace/1)"
    (read_file golden_trace)
    (Hwf_obs.Jsonl.trace_to_string r.Engine.trace)

let test_golden_metrics () =
  let _, collector = demo_run () in
  Alcotest.(check string)
    "metrics export matches the golden file (schema hwf-metrics/1)"
    (read_file golden_metrics)
    (Hwf_obs.Jsonl.metrics_to_string (Hwf_obs.Metrics.finish collector))

(* S4: the CLI's explore export path — replay of a schedule-deterministic
   decision sequence — must produce identical bytes whatever the worker
   count of the search that preceded it. *)
let test_jobs_determinism () =
  let b =
    Scenarios.consensus ~name:"golden" ~impl:Scenarios.Fig3 ~quantum:8
      ~layout:[ (0, 1); (0, 1) ]
  in
  let export jobs =
    let o = Explore.explore ~max_runs:5_000 ~jobs b.Scenarios.scenario in
    let schedule =
      match o.Explore.counterexample with
      | Some c -> c.Explore.decisions
      | None -> []
    in
    let result, _ = Schedule.replay b.Scenarios.scenario schedule in
    let m = Hwf_obs.Metrics.of_trace result.Engine.trace in
    let m =
      Hwf_obs.Metrics.with_harness m
        [
          ("explore.runs", o.Explore.runs);
          ("explore.exhaustive", if o.Explore.exhaustive then 1 else 0);
        ]
    in
    ( Hwf_obs.Jsonl.trace_to_string result.Engine.trace,
      Hwf_obs.Jsonl.metrics_to_string m )
  in
  let t1, m1 = export 1 in
  let t4, m4 = export 4 in
  Alcotest.(check string) "trace bytes identical for --jobs 1 vs --jobs 4" t1 t4;
  Alcotest.(check string) "metrics bytes identical for --jobs 1 vs --jobs 4" m1 m4

(* Live collection through the observer hook and post-hoc reconstruction
   from the recorded trace must agree exactly. *)
let test_feed_vs_of_trace () =
  let r, collector = demo_run () in
  Alcotest.(check string)
    "observer-fed metrics equal Metrics.of_trace"
    (Hwf_obs.Jsonl.metrics_to_string (Hwf_obs.Metrics.of_trace r.Engine.trace))
    (Hwf_obs.Jsonl.metrics_to_string (Hwf_obs.Metrics.finish collector))

(* The escaper: variable names with JSON-hostile characters must still
   produce parseable lines (checked here by exact expected output). *)
let test_escaping () =
  let config = Util.uni_config ~quantum:4 [ 1 ] in
  let x = Shared.make "quote\"back\\slash\ttab" 0 in
  let body () = Eff.invocation "op" (fun () -> ignore (Shared.read x)) in
  let r = Engine.run ~config ~policy:Policy.first [| body |] in
  let s = Hwf_obs.Jsonl.trace_to_string r.Engine.trace in
  Alcotest.(check bool)
    "escaped variable name appears"
    true
    (let sub = {|"var":"quote\"back\\slash\ttab"|} in
     let rec find i =
       if i + String.length sub > String.length s then false
       else if String.sub s i (String.length sub) = sub then true
       else find (i + 1)
     in
     find 0)

(* ---- differential check of the incremental preemption accounting ----

   [Metrics] resolves preemption class and quantum grants from
   per-processor counters in O(1) per statement; this reference
   recomputes them with the direct quadratic broadcast (every statement
   eagerly marks every open same-processor peer) and the two must agree
   field for field on every trace, including priority churn and
   multiprogrammed processors. *)
module Naive = struct
  type acc = {
    mutable priority : int;
    mutable open_ : bool;
    mutable inv_statements : int;
    mutable gap : [ `None | `Same | `Higher ];
    mutable pending : bool;
    mutable guarantee : int;
    mutable inv_same : int;
    mutable inv_higher : int;
    mutable same : int;
    mutable higher : int;
    mutable grants : int;
    mutable protected_ : int;
  }

  (* per-pid (same, higher, grants, protected) plus per-invocation
     (pid, inv, same, higher) in close order *)
  let run trace =
    let config = Trace.config trace in
    let n = Config.n config in
    let processor pid = config.Config.procs.(pid).Proc.processor in
    let accs =
      Array.init n (fun pid ->
          {
            priority = config.Config.procs.(pid).Proc.priority;
            open_ = false;
            inv_statements = 0;
            gap = `None;
            pending = false;
            guarantee = 0;
            inv_same = 0;
            inv_higher = 0;
            same = 0;
            higher = 0;
            grants = 0;
            protected_ = 0;
          })
    in
    let closed = ref [] in
    let cur_inv = Array.make n 0 in
    let close pid =
      let a = accs.(pid) in
      if a.open_ then begin
        closed := (pid, cur_inv.(pid), a.inv_same, a.inv_higher) :: !closed;
        a.open_ <- false;
        a.pending <- false;
        a.guarantee <- 0
      end
    in
    Trace.iter
      (fun ev ->
        match ev with
        | Trace.Inv_begin { pid; inv; _ } ->
          let a = accs.(pid) in
          a.open_ <- true;
          a.inv_statements <- 0;
          a.inv_same <- 0;
          a.inv_higher <- 0;
          a.gap <- `None;
          cur_inv.(pid) <- inv
        | Trace.Inv_end { pid; _ } -> close pid
        | Trace.Note _ -> ()
        | Trace.Set_priority { pid; priority } -> accs.(pid).priority <- priority
        | Trace.Axiom2_gate { active; _ } ->
          if active then Array.iter (fun a -> a.guarantee <- 0) accs
        | Trace.Stmt { pid; cost; _ } ->
          let a = accs.(pid) in
          if a.pending then begin
            a.pending <- false;
            a.grants <- a.grants + 1;
            a.guarantee <- config.Config.quantum
          end;
          if a.guarantee > 0 then a.protected_ <- a.protected_ + 1;
          a.guarantee <- max 0 (a.guarantee - cost);
          if a.open_ then begin
            (match a.gap with
            | `None -> ()
            | `Same ->
              a.inv_same <- a.inv_same + 1;
              a.same <- a.same + 1
            | `Higher ->
              a.inv_higher <- a.inv_higher + 1;
              a.higher <- a.higher + 1);
            a.gap <- `None;
            a.inv_statements <- a.inv_statements + 1
          end;
          for q = 0 to n - 1 do
            if q <> pid && processor q = processor pid then begin
              let b = accs.(q) in
              if b.open_ then b.pending <- true;
              if b.open_ && b.inv_statements > 0 then begin
                let cls = if a.priority > b.priority then `Higher else `Same in
                match (b.gap, cls) with
                | `Higher, _ -> ()
                | _, `Higher -> b.gap <- `Higher
                | _, `Same -> b.gap <- `Same
              end
            end
          done)
      trace;
    for pid = 0 to n - 1 do
      close pid
    done;
    ( Array.map (fun a -> (a.same, a.higher, a.grants, a.protected_)) accs,
      List.rev !closed )
end

let check_against_naive what trace =
  let m = Hwf_obs.Metrics.of_trace trace in
  let ref_pids, ref_invs = Naive.run trace in
  Array.iteri
    (fun pid (same, higher, grants, protected_) ->
      let s = m.Hwf_obs.Metrics.per_pid.(pid) in
      Alcotest.(check (list int))
        (Fmt.str "%s: p%d preemption/grant accounting" what (pid + 1))
        [ same; higher; grants; protected_ ]
        [
          s.Hwf_obs.Metrics.same_preemptions;
          s.Hwf_obs.Metrics.higher_preemptions;
          s.Hwf_obs.Metrics.guarantee_grants;
          s.Hwf_obs.Metrics.protected_statements;
        ])
    ref_pids;
  Alcotest.(check (list (list int)))
    (Fmt.str "%s: per-invocation preemption classes" what)
    (List.map (fun (pid, inv, s, h) -> [ pid; inv; s; h ]) ref_invs)
    (List.map
       (fun (i : Hwf_obs.Metrics.inv_stat) ->
         [ i.pid; i.inv; i.same_preemptions; i.higher_preemptions ])
       m.Hwf_obs.Metrics.invocations)

let test_incremental_vs_naive () =
  (* Multiprogrammed processors with priority spread, across policies
     and seeds; fig9 adds Set_priority churn mid-gap. *)
  let layouts =
    [
      ("uni4", [ (0, 1); (0, 2); (0, 1); (0, 3) ]);
      ("2cpu", [ (0, 1); (0, 2); (1, 1); (1, 2); (0, 3) ]);
    ]
  in
  List.iter
    (fun (lname, layout) ->
      List.iter
        (fun (iname, impl) ->
          List.iter
            (fun seed ->
              let b =
                Scenarios.consensus ~name:"diff" ~impl ~quantum:3 ~layout
              in
              let inst = b.Scenarios.scenario.Explore.make () in
              let r =
                Engine.run ~step_limit:100_000
                  ~config:b.Scenarios.scenario.Explore.config
                  ~policy:(Policy.random ~seed) inst.Explore.programs
              in
              check_against_naive
                (Fmt.str "%s/%s/seed%d" lname iname seed)
                r.Engine.trace)
            [ 0; 1; 2; 3 ])
        [
          ("fig7", Scenarios.Fig7 { consensus_number = 4 });
          ("fig9", Scenarios.Fig9 { consensus_number = 4 });
        ])
    layouts

let promote () =
  let r, collector = demo_run () in
  Hwf_obs.Jsonl.write_trace ~path:("test/" ^ golden_trace) r.Engine.trace;
  Hwf_obs.Jsonl.write_metrics
    ~path:("test/" ^ golden_metrics)
    (Hwf_obs.Metrics.finish collector);
  print_endline "promoted test/golden/fig3_{trace,metrics}.jsonl"

let () =
  if Sys.getenv_opt "HWF_GOLDEN_PROMOTE" <> None then promote ()
  else
    Alcotest.run "obs"
      [
        ( "jsonl",
          [
            Alcotest.test_case "golden trace" `Quick test_golden_trace;
            Alcotest.test_case "golden metrics" `Quick test_golden_metrics;
            Alcotest.test_case "jobs determinism (S4)" `Quick test_jobs_determinism;
            Alcotest.test_case "feed vs of_trace" `Quick test_feed_vs_of_trace;
            Alcotest.test_case "escaping" `Quick test_escaping;
          ] );
        ( "metrics",
          [
            Alcotest.test_case "incremental vs naive broadcast" `Quick
              test_incremental_vs_naive;
          ] );
      ]
