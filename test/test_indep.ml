(* The static independence oracle and its swap-replay certifier, plus
   the DPOR parity matrix: verdicts and first counterexamples must be
   byte-identical across --no-dpor / sleep sets (base relation) / the
   statically-derived relation, while run counts only shrink. *)

open Hwf_sim
open Hwf_objects
open Hwf_lint
module Explore = Hwf_adversary.Explore

let two_cpu =
  Config.make ~quantum:4 ~processors:2 ~levels:1
    [
      Proc.make ~pid:0 ~processor:0 ~priority:1 ();
      Proc.make ~pid:1 ~processor:1 ~priority:1 ();
    ]

let spec ~name ~make =
  {
    Lint.name;
    config = two_cpu;
    make;
    expect = Checks.Helping;
    min_quantum = 1;
    theorem = "test";
    fair_only = true;
    step_limit = 2_000;
  }

(* Two fetch&adds per process on one counter, results discarded: the
   canonical commuting workload the oracle must prove. *)
let fai_make () =
  let c = Hw_atomic.make "ind.c" 0 in
  Array.init 2 (fun _ () ->
      Eff.invocation "incr" (fun () ->
          ignore (Hw_atomic.fetch_and_add c 1);
          ignore (Hw_atomic.fetch_and_add c 1)))

let fai_fp pid processor =
  {
    Policy.fpid = pid;
    fproc = processor;
    fvar = Some "ind.c";
    fwrite = true;
    fknown = true;
    fop = Some (Op.rmw ~var:"ind.c" ~kind:"F&A");
  }

let test_oracle_proves () =
  let o = Lint.run (spec ~name:"indep-fai" ~make:fai_make) in
  let t = Indep.build o in
  let s = Indep.summary t in
  Util.checkb "nodes observed" (s.Indep.rmw_nodes >= 2);
  Util.checkb "nodes insensitive" (s.Indep.insensitive_nodes >= 2);
  Util.checkb "pairs proven" (s.Indep.indep_pairs >= 1);
  Util.checkb "var reported" (List.mem "ind.c" s.Indep.indep_vars);
  let rel = Indep.relation t in
  Util.checkb "baseline rejects same-var RMWs"
    (not (Policy.independent (fai_fp 0 0) (fai_fp 1 1)));
  Util.checkb "oracle commutes them" (rel (fai_fp 0 0) (fai_fp 1 1));
  Util.checkb "symmetric" (rel (fai_fp 1 1) (fai_fp 0 0));
  Util.checkb "same processor never commutes" (not (rel (fai_fp 0 0) (fai_fp 1 0)))

(* A fetched value that steers a branch: the node has two CFG
   successors, so the oracle must refuse to commute it. *)
let test_branchy_refused () =
  let make () =
    let c = Hw_atomic.make "br.c" 0 in
    Array.init 2 (fun _ () ->
        Eff.invocation "incr" (fun () ->
            let a = Hw_atomic.fetch_and_add c 1 in
            if a = 0 then Eff.local "won";
            let b = Hw_atomic.fetch_and_add c 1 in
            if b = 0 then Eff.local "won"))
  in
  let o = Lint.run (spec ~name:"indep-branchy" ~make) in
  let t = Indep.build o in
  let op = Op.rmw ~var:"br.c" ~kind:"F&A" in
  Util.checkb "branchy node not insensitive" (not (Indep.insensitive t 0 op));
  let fp pid processor =
    { (fai_fp pid processor) with Policy.fvar = Some "br.c"; fop = Some op }
  in
  Util.checkb "relation refuses" (not (Indep.relation t (fp 0 0) (fp 1 1)))

(* Non-additive RMW kinds (C&S) stay dependent even when insensitive. *)
let test_cas_refused () =
  let make () =
    let c = Hw_atomic.make "cs.c" 0 in
    Array.init 2 (fun pid () ->
        Eff.invocation "set" (fun () ->
            ignore (Hw_atomic.cas c ~expected:pid ~desired:7)))
  in
  let o = Lint.run (spec ~name:"indep-cas" ~make) in
  let t = Indep.build o in
  let op = Op.rmw ~var:"cs.c" ~kind:"C&S" in
  let fp pid processor =
    { (fai_fp pid processor) with Policy.fvar = Some "cs.c"; fop = Some op }
  in
  Util.checkb "C&S never commuted" (not (Indep.relation t (fp 0 0) (fp 1 1)))

let test_certify_clean () =
  let o = Lint.run (spec ~name:"indep-fai" ~make:fai_make) in
  match Indep.certified_relation ~config:two_cpu ~make:fai_make o with
  | Ok (_, cert) ->
    Util.checkb "swaps replayed" (cert.Indep.swaps >= 1);
    Util.checkb "no failures" (cert.Indep.failures = [])
  | Error m -> Alcotest.failf "certification failed on clean workload: %s" m

(* The data-escape hole: the fetched old value escapes into the harness
   verdict, invisible to the CFG. Static analysis claims the F&As
   commute; the swap replay must refute it. *)
let test_certify_catches_escape () =
  let current = ref [||] in
  (* Two F&As per process: a process's first statement executes at its
     wake-up decision, where its footprint is still unknown (nothing is
     claimed about wakes); the second statements are the adjacent
     known-footprint pair the oracle claims commute. *)
  let make () =
    let c = Hw_atomic.make "esc.c" 0 in
    let outs = Array.make 2 (-1) in
    current := outs;
    Array.init 2 (fun pid () ->
        Eff.invocation "incr" (fun () ->
            ignore (Hw_atomic.fetch_and_add c 1);
            outs.(pid) <- Hw_atomic.fetch_and_add c 1))
  in
  let check (_ : Engine.result) =
    if !current.(0) = 2 then Ok () else Error "p0 lost the race"
  in
  let o = Lint.run (spec ~name:"indep-escape" ~make) in
  let t = Indep.build o in
  Util.checkb "statically claimed independent"
    (Indep.relation t
       { (fai_fp 0 0) with Policy.fvar = Some "esc.c"; fop = Some (Op.rmw ~var:"esc.c" ~kind:"F&A") }
       { (fai_fp 1 1) with Policy.fvar = Some "esc.c"; fop = Some (Op.rmw ~var:"esc.c" ~kind:"F&A") });
  match Indep.certified_relation ~check ~config:two_cpu ~make o with
  | Ok _ -> Alcotest.fail "certifier missed the data escape"
  | Error m -> Util.checkb "mentions refutation" (Util.contains m "refuted")

(* ---- the parity matrix ----

   For each scenario: --no-dpor, sleep sets under the base relation,
   and sleep sets under the certified static relation must agree on
   exhaustiveness, verdict, and the first counterexample (message and
   decision path, byte for byte); run counts only shrink. *)

let fai_scenario =
  Explore.
    {
      name = "indep-fai";
      config = two_cpu;
      make =
        (fun () ->
          let c = Hw_atomic.make "ind.c" 0 in
          let programs =
            Array.init 2 (fun _ () ->
                Eff.invocation "incr" (fun () ->
                    ignore (Hw_atomic.fetch_and_add c 1);
                    ignore (Hw_atomic.fetch_and_add c 1)))
          in
          let check (r : Engine.result) =
            if not (Array.for_all Fun.id r.Engine.finished) then
              Error "not all finished"
            else if Hw_atomic.peek c <> 4 then
              Error (Fmt.str "bad final: %d" (Hw_atomic.peek c))
            else Ok ()
          in
          { Explore.programs; check });
    }

let lost_update_scenario =
  Explore.
    {
      name = "indep-lost-update";
      config = two_cpu;
      make =
        (fun () ->
          let x = Shared.make "lu.x" 0 in
          let programs =
            Array.init 2 (fun _ () ->
                Eff.invocation "incr" (fun () ->
                    let v = Shared.read x in
                    Shared.write x (v + 1)))
          in
          let check (r : Engine.result) =
            if not (Array.for_all Fun.id r.Engine.finished) then
              Error "not all finished"
            else if Shared.peek x <> 2 then
              Error (Fmt.str "lost update: x=%d" (Shared.peek x))
            else Ok ()
          in
          { Explore.programs; check });
    }

let static_relation_for (s : Explore.scenario) =
  let make () = (s.Explore.make ()).Explore.programs in
  let o = Lint.run (spec ~name:s.Explore.name ~make) in
  match Indep.certified_relation ~config:s.Explore.config ~make o with
  | Ok (t, _) -> { Explore.rname = "static"; rel = Indep.relation t }
  | Error m -> Alcotest.failf "certification failed for %s: %s" s.Explore.name m

let cx_key (o : Explore.outcome) =
  Option.map
    (fun (c : Explore.counterexample) -> (c.Explore.message, c.Explore.decisions))
    o.Explore.counterexample

let matrix_cell (s : Explore.scenario) ~expect_prune =
  let full = Explore.explore ~dpor:false s in
  let base = Explore.explore s in
  let rel = static_relation_for s in
  let stats = Explore.make_stats ~jobs:1 s in
  let static = Explore.explore ~relation:rel ~stats s in
  (* A found counterexample stops the search, so exhaustiveness must
     merely agree across modes, not hold. *)
  Alcotest.(check bool) "exhaustive: full = base" full.Explore.exhaustive
    base.Explore.exhaustive;
  Alcotest.(check bool) "exhaustive: base = static" base.Explore.exhaustive
    static.Explore.exhaustive;
  Alcotest.(check bool) "cx: full = base" true (cx_key full = cx_key base);
  Alcotest.(check bool) "cx: base = static" true (cx_key base = cx_key static);
  Util.checkb "base <= full" (base.Explore.runs <= full.Explore.runs);
  Util.checkb "static <= base" (static.Explore.runs <= base.Explore.runs);
  if expect_prune then
    Util.checkb
      (Fmt.str "static strictly prunes (%d < %d)" static.Explore.runs
         base.Explore.runs)
      (static.Explore.runs < base.Explore.runs);
  (* The counters surface: prunes are visible, not silent. *)
  Util.checkb "prune counters consistent"
    (Explore.stats_pruned stats >= 0 && Explore.stats_source_prunes stats >= 0);
  static

let test_matrix_fai () =
  let o = matrix_cell fai_scenario ~expect_prune:true in
  Util.checkb "clean scenario exhaustive" o.Explore.exhaustive;
  Util.checkb "no counterexample" (o.Explore.counterexample = None)

let test_matrix_lost_update () =
  (* Plain accesses: the oracle adds nothing, so the counterexample must
     survive byte for byte through the identical search. *)
  let o = matrix_cell lost_update_scenario ~expect_prune:false in
  Util.checkb "counterexample found" (o.Explore.counterexample <> None)

(* The static relation composes with the parallel fan-out: jobs > 1
   must not change the outcome. *)
let test_static_jobs_identity () =
  let rel = static_relation_for fai_scenario in
  let o1 = Explore.explore ~relation:rel ~jobs:1 fai_scenario in
  let o2 = Explore.explore ~relation:rel ~jobs:2 ~grain:1 fai_scenario in
  Alcotest.(check int) "runs" o1.Explore.runs o2.Explore.runs;
  Alcotest.(check bool) "exhaustive" o1.Explore.exhaustive o2.Explore.exhaustive;
  Alcotest.(check bool) "cx" true (cx_key o1 = cx_key o2)

let () =
  Alcotest.run "indep"
    [
      ( "oracle",
        [
          Alcotest.test_case "proves commuting F&As" `Quick test_oracle_proves;
          Alcotest.test_case "refuses branchy nodes" `Quick test_branchy_refused;
          Alcotest.test_case "refuses C&S" `Quick test_cas_refused;
        ] );
      ( "certifier",
        [
          Alcotest.test_case "clean workload certifies" `Quick test_certify_clean;
          Alcotest.test_case "data escape refuted" `Quick test_certify_catches_escape;
        ] );
      ( "parity",
        [
          Alcotest.test_case "fai matrix" `Quick test_matrix_fai;
          Alcotest.test_case "lost-update matrix" `Quick test_matrix_lost_update;
          Alcotest.test_case "jobs identity" `Quick test_static_jobs_identity;
        ] );
    ]
