open Hwf_sim
open Hwf_workload
open Hwf_lint

(* The conformance linter: clean subjects lint clean, the known-bad
   corpus is rejected with the expected rules, the derived constants
   match the theorem preconditions, and the two independent Axiom-2
   implementations agree. *)

let budget = 6

let test_registry_clean () =
  List.iter
    (fun (spec : Lint.spec) ->
      let o = Lint.run ~budget spec in
      (match Lint.errors o with
      | [] -> ()
      | errs ->
        Alcotest.failf "%s: %d errors, first: %a" spec.Lint.name (List.length errs)
          Checks.pp_finding (List.hd errs));
      Util.checkb
        (spec.Lint.name ^ " replays ran")
        (o.Lint.runs > 0 && o.Lint.cfg.Cfg.derived_c > 0))
    (Registry.all ())

let test_derived_constants () =
  (* Fig. 3's derived constant is exactly the Theorem 1 count — the
     acceptance pin for the whole quantum-shape checker. *)
  let o = Lint.run ~budget (Registry.fig3 ()) in
  Alcotest.(check int)
    "fig3 derived c" Hwf_core.Uni_consensus.statements_per_decide o.Lint.cfg.Cfg.derived_c;
  (* Fig. 5/7 and the universal construction stay within the declared
     constants the certifier uses for its own-step bounds. *)
  let within spec bound =
    let o = Lint.run ~budget spec in
    if o.Lint.cfg.Cfg.derived_c > bound then
      Alcotest.failf "%s: derived %d > declared %d" spec.Lint.name o.Lint.cfg.Cfg.derived_c
        bound
  in
  within (Registry.fig5 ())
    (Hwf_core.Bounds.fig5_stmt_const * Layout.levels [ (0, 1); (0, 2); (0, 3) ]);
  within (Registry.universal ()) (Hwf_core.Bounds.universal_stmt_const * 3)

let test_fig9_helping_loop () =
  (* The Sec. 5 spin-wait must be classified helping-bounded, not
     unbounded: the loser loops on the winner's Output write. *)
  let o = Lint.run ~budget (Registry.fig9 ()) in
  Util.checkb "lints clean" (Lint.ok o);
  Util.checkb "has a helping loop"
    (List.exists (fun (l : Cfg.loop) -> l.Cfg.l_class = Cfg.Helping) o.Lint.cfg.Cfg.loops);
  Util.checkb "no unbounded loop"
    (List.for_all
       (fun (l : Cfg.loop) -> l.Cfg.l_class <> Cfg.Unbounded)
       o.Lint.cfg.Cfg.loops)

let test_corpus_rejected () =
  List.iter
    (fun (c : Hwf_lint_corpus.Corpus.case) ->
      let o, fired = Hwf_lint_corpus.Corpus.fires ~budget c in
      if not fired then
        Alcotest.failf "corpus %s: expected rule %s, findings: %a" o.Lint.spec.Lint.name
          c.Hwf_lint_corpus.Corpus.expected_rule
          Fmt.(Dump.list Checks.pp_finding)
          o.Lint.findings)
    (Hwf_lint_corpus.Corpus.all ())

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_report_deterministic () =
  let once () = Report.to_string [ Lint.run ~budget (Registry.fig3 ()) ] in
  let a = once () and b = once () in
  Alcotest.(check string) "byte-equal reports" a b;
  Util.checkb "carries schema tag" (String.length a > 0 && contains ~sub:"hwf-lint/1" a)

(* ---- satellite 1: the peek/poke guard without a tap installed ---- *)

let test_peek_guard_raises () =
  let config =
    Config.uniprocessor ~quantum:8 ~levels:1 [ Proc.make ~pid:0 ~processor:0 ~priority:1 () ]
  in
  let x = Shared.make "guard.x" 0 in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            ignore (Shared.read x);
            ignore (Shared.peek x)));
    |]
  in
  Alcotest.check_raises "peek rejected"
    (Invalid_argument "Shared.peek: harness-only access to guard.x from process code")
    (fun () -> ignore (Engine.run ~config ~policy:Policy.first bodies));
  (* Outside process code the same peek is the supported harness path. *)
  Alcotest.(check int) "harness peek still works" 0 (Shared.peek x)

let test_poke_guard_raises () =
  let config =
    Config.uniprocessor ~quantum:8 ~levels:1 [ Proc.make ~pid:0 ~processor:0 ~priority:1 () ]
  in
  let x = Shared.make "guard.y" 0 in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            ignore (Shared.read x);
            Shared.poke x 1));
    |]
  in
  Alcotest.check_raises "poke rejected"
    (Invalid_argument "Shared.poke: harness-only access to guard.y from process code")
    (fun () -> ignore (Engine.run ~config ~policy:Policy.first bodies))

let test_instrumentation_escape_hatch () =
  let config =
    Config.uniprocessor ~quantum:8 ~levels:1 [ Proc.make ~pid:0 ~processor:0 ~priority:1 () ]
  in
  let x = Shared.make "guard.z" 41 in
  let seen = ref 0 in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            ignore (Shared.read x);
            Runtime.instrumentation (fun () -> seen := Shared.peek x)));
    |]
  in
  let r = Engine.run ~config ~policy:Policy.first bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  Alcotest.(check int) "instrumented peek saw the value" 41 !seen

(* ---- satellite 2: the two Axiom-2 implementations cross-validate ---- *)

let quantum_pairs vs =
  List.filter_map
    (fun (v : Wellformed.violation) ->
      match v.Wellformed.axiom with
      | `Quantum | `Burst -> Some (v.Wellformed.at, v.Wellformed.pid, v.Wellformed.blame)
      | `Priority -> None)
    vs

let test_burst_checker_fires () =
  (* Hand-built violating trace: p0 is preempted, resumes (earning a
     Q=4 guarantee), and p1 then executes a same-priority statement
     inside p0's burst. Both implementations must flag statement 3. *)
  let config =
    Config.uniprocessor ~quantum:4 ~levels:1
      [ Proc.make ~pid:0 ~processor:0 ~priority:1 ();
        Proc.make ~pid:1 ~processor:0 ~priority:1 () ]
  in
  let t = Trace.create config in
  Trace.add t (Trace.Inv_begin { pid = 0; inv = 0; label = "a" });
  Trace.add t (Trace.Stmt { idx = 0; pid = 0; op = Op.local "s"; inv = 0; cost = 1 });
  Trace.add t (Trace.Inv_begin { pid = 1; inv = 0; label = "b" });
  Trace.add t (Trace.Stmt { idx = 1; pid = 1; op = Op.local "s"; inv = 0; cost = 1 });
  Trace.add t (Trace.Stmt { idx = 2; pid = 0; op = Op.local "s"; inv = 0; cost = 1 });
  Trace.add t (Trace.Stmt { idx = 3; pid = 1; op = Op.local "s"; inv = 0; cost = 1 });
  (match Wellformed.check t with
  | [ { Wellformed.at = 3; pid = 1; axiom = `Quantum; blame = 0 } ] -> ()
  | vs -> Alcotest.failf "check: expected one quantum violation at 3, got %a"
            Fmt.(Dump.list Wellformed.pp_violation) vs);
  match Wellformed.axiom2_bursts t with
  | [ { Wellformed.at = 3; pid = 1; axiom = `Burst; blame = 0 } ] -> ()
  | vs ->
    Alcotest.failf "bursts: expected one burst violation at 3, got %a"
      Fmt.(Dump.list Wellformed.pp_violation) vs

let test_burst_agrees_on_engine_traces () =
  (* Engine-produced traces are well-formed, so both checkers must
     report nothing — and they must agree violation-for-violation on
     every replayed schedule of the registry's smallest subject. *)
  let spec = Registry.fig3 () in
  List.iter
    (fun (name, policy) ->
      let r =
        Engine.run ~step_limit:100_000 ~config:spec.Lint.config ~policy:(policy ())
          (spec.Lint.make ())
      in
      let a = quantum_pairs (Wellformed.check r.Engine.trace) in
      let b = quantum_pairs (Wellformed.axiom2_bursts r.Engine.trace) in
      Alcotest.(check (list (triple int int int))) (name ^ " agree") a b;
      Alcotest.(check (list (triple int int int))) (name ^ " well-formed") [] a)
    (Recorder.battery ~budget:8 ~fair_only:false ())

let test_burst_respects_gate () =
  (* Same violating trace, but the gate is off around the offending
     statement: neither implementation may report it. *)
  let config =
    Config.uniprocessor ~quantum:4 ~levels:1
      [ Proc.make ~pid:0 ~processor:0 ~priority:1 ();
        Proc.make ~pid:1 ~processor:0 ~priority:1 () ]
  in
  let t = Trace.create config in
  Trace.add t (Trace.Inv_begin { pid = 0; inv = 0; label = "a" });
  Trace.add t (Trace.Stmt { idx = 0; pid = 0; op = Op.local "s"; inv = 0; cost = 1 });
  Trace.add t (Trace.Inv_begin { pid = 1; inv = 0; label = "b" });
  Trace.add t (Trace.Stmt { idx = 1; pid = 1; op = Op.local "s"; inv = 0; cost = 1 });
  Trace.add t (Trace.Stmt { idx = 2; pid = 0; op = Op.local "s"; inv = 0; cost = 1 });
  Trace.add t (Trace.Axiom2_gate { at = 3; active = false });
  Trace.add t (Trace.Stmt { idx = 3; pid = 1; op = Op.local "s"; inv = 0; cost = 1 });
  Alcotest.(check int) "check suppressed" 0 (List.length (quantum_pairs (Wellformed.check t)));
  Alcotest.(check int) "bursts suppressed" 0
    (List.length (quantum_pairs (Wellformed.axiom2_bursts t)))

let () =
  Alcotest.run "lint"
    [
      ( "linter",
        [
          Alcotest.test_case "registry lints clean" `Quick test_registry_clean;
          Alcotest.test_case "derived constants match theorems" `Quick test_derived_constants;
          Alcotest.test_case "fig9 helping loop" `Quick test_fig9_helping_loop;
          Alcotest.test_case "corpus rejected" `Quick test_corpus_rejected;
          Alcotest.test_case "report deterministic" `Quick test_report_deterministic;
        ] );
      ( "guard",
        [
          Alcotest.test_case "peek raises in process code" `Quick test_peek_guard_raises;
          Alcotest.test_case "poke raises in process code" `Quick test_poke_guard_raises;
          Alcotest.test_case "instrumentation escape hatch" `Quick
            test_instrumentation_escape_hatch;
        ] );
      ( "axiom2-burst",
        [
          Alcotest.test_case "fires on violating trace" `Quick test_burst_checker_fires;
          Alcotest.test_case "agrees with check on engine traces" `Quick
            test_burst_agrees_on_engine_traces;
          Alcotest.test_case "respects the gate" `Quick test_burst_respects_gate;
        ] );
    ]
