open Hwf_sim
open Hwf_adversary
open Hwf_workload

(* Sleep-set pruning (docs/PARALLELISM.md). The contract under test:
   verdicts, counterexamples and exhaustiveness are invariant under
   pruning; run counts shrink on multiprocessor scenarios and are
   untouched on uniprocessor ones; the [Eff.now] validity boundary is
   enforced (silent disarm when the probe reads the clock, a loud
   [Invalid_argument] when only a later schedule does). *)

let check_outcomes name (a : Explore.outcome) (b : Explore.outcome) =
  Util.checki (name ^ ": runs") a.runs b.runs;
  Util.checkb (name ^ ": exhaustive") (a.exhaustive = b.exhaustive);
  match (a.counterexample, b.counterexample) with
  | None, None -> ()
  | Some ca, Some cb ->
    Util.check Alcotest.string (name ^ ": message") ca.message cb.message;
    Util.check Alcotest.(list int) (name ^ ": decision path") ca.decisions cb.decisions
  | Some _, None | None, Some _ ->
    Alcotest.failf "%s: pruning changed the verdict" name

(* A two-processor scenario: one process per cpu, so every scheduler
   decision is a genuine cross-processor interleaving choice — the
   setting sleep sets are for. [mk] builds fresh shared state per run
   and returns the programs plus a final-state predicate (evaluated on
   quiescent state via peek, so it is invariant under commuting
   independent transitions — exactly the checks pruning preserves). *)
let two_cpu ~name mk =
  let layout = [ (0, 1); (1, 1) ] in
  let config = Layout.to_config ~quantum:4 layout in
  let make () =
    let programs, finals = mk () in
    let check (r : Engine.result) =
      if not (Array.for_all Fun.id r.Engine.finished) then
        Error "not all processes finished"
      else finals ()
    in
    Explore.{ programs; check }
  in
  Explore.{ name; config; make }

(* Disjoint footprints: P0 only touches [a], P1 only touches [b], so
   every cross-processor pair of transitions commutes and the pruned
   search collapses to a handful of representatives. *)
let disjoint () =
  two_cpu ~name:"dpor.disjoint" (fun () ->
      let a = Shared.make "a" 0 and b = Shared.make "b" 0 in
      let bump v = Shared.write v (Shared.read v + 1) in
      let programs =
        [|
          (fun () -> Eff.invocation "p0" (fun () -> bump a; bump a));
          (fun () -> Eff.invocation "p1" (fun () -> bump b; bump b));
        |]
      in
      let finals () =
        if Shared.peek a = 2 && Shared.peek b = 2 then Ok ()
        else Error (Fmt.str "bad finals a=%d b=%d" (Shared.peek a) (Shared.peek b))
      in
      (programs, finals))

(* A real data race: both processes do a read-modify-write on [x]
   without atomicity, so interleaved schedules lose an update. The
   counterexample must survive pruning byte for byte. *)
let lost_update () =
  two_cpu ~name:"dpor.lost-update" (fun () ->
      let x = Shared.make "x" 0 in
      let incr () =
        let v = Shared.read x in
        Shared.write x (v + 1)
      in
      let programs =
        [|
          (fun () -> Eff.invocation "p0" incr);
          (fun () -> Eff.invocation "p1" incr);
        |]
      in
      let finals () =
        let v = Shared.peek x in
        if v = 2 then Ok () else Error (Fmt.str "lost update: x=%d" v)
      in
      (programs, finals))

let fig3 ~quantum =
  Scenarios.consensus ~name:"dpor.f3" ~impl:Scenarios.Fig3 ~quantum
    ~layout:[ (0, 1); (0, 1) ]

(* ---- tests ---- *)

let test_uniprocessor_identical () =
  (* All scheduler accounting is per-processor, so on one processor
     nothing commutes: pruning must be a no-op, bit for bit. *)
  List.iter
    (fun quantum ->
      let b = fig3 ~quantum in
      let stats = Explore.make_stats ~jobs:1 b.scenario in
      let dp = Explore.explore ~stats b.scenario in
      let full = Explore.explore ~dpor:false b.scenario in
      check_outcomes (Printf.sprintf "fig3 Q=%d" quantum) full dp;
      Util.checki "nothing pruned on a uniprocessor" 0 (Explore.stats_pruned stats))
    [ 1; 8 ]

let test_multiprocessor_prunes () =
  let s = disjoint () in
  let stats = Explore.make_stats ~jobs:1 s in
  let full = Explore.explore ~dpor:false s in
  let pruned = Explore.explore ~stats s in
  Util.checkb "full search is exhaustive" full.exhaustive;
  Util.checkb "pruned search is exhaustive" pruned.exhaustive;
  Util.checkb "both verdicts clean"
    (full.counterexample = None && pruned.counterexample = None);
  Util.checkb
    (Printf.sprintf "pruning shrinks the run count (%d < %d)" pruned.runs full.runs)
    (pruned.runs < full.runs);
  Util.checkb "skipped branches are counted" (Explore.stats_pruned stats > 0)

let test_counterexample_preserved () =
  let s = lost_update () in
  let full = Explore.explore ~dpor:false s in
  let pruned = Explore.explore s in
  (match full.counterexample with
  | None -> Alcotest.fail "expected the lost-update counterexample"
  | Some c -> Util.checkb "message names the race" (Util.contains c.message "lost update"));
  (* The canonical-first counterexample is never pruned: an equivalent
     earlier representative would have failed first. *)
  Util.checkb "pruned finds it in no more runs" (pruned.runs <= full.runs);
  match (full.counterexample, pruned.counterexample) with
  | Some cf, Some cp ->
    Util.check Alcotest.string "same message" cf.message cp.message;
    Util.check Alcotest.(list int) "same decision path" cf.decisions cp.decisions
  | _ -> Alcotest.fail "pruning changed the verdict"

let test_jobs_grain_identity_under_dpor () =
  (* Sleep sets are a pure function of the decision prefix, so pruning
     must commute with the parallel fan-out at any grain. *)
  List.iter
    (fun s ->
      let o1 = Explore.explore ~jobs:1 s in
      List.iter
        (fun (jobs, grain) ->
          let o = Explore.explore ~jobs ~grain s in
          check_outcomes (Printf.sprintf "%s jobs=%d grain=%d" s.Explore.name jobs grain) o1 o)
        [ (2, 1); (4, 1); (4, 2) ])
    [ disjoint (); lost_update () ]

let test_probe_taint_disarms () =
  (* Every run reads the global clock: the probe sees it and pruning is
     silently disarmed — the search runs in full, no error. *)
  let s =
    two_cpu ~name:"dpor.clocked" (fun () ->
        let a = Shared.make "a" 0 in
        let programs =
          [|
            (fun () -> Eff.invocation "p0" (fun () -> Shared.write a 1; Shared.write a 2));
            (fun () -> Eff.invocation "p1" (fun () -> ignore (Eff.now ()); Shared.write a 3));
          |]
        in
        (programs, fun () -> Ok ()))
  in
  let stats = Explore.make_stats ~jobs:1 s in
  let full = Explore.explore ~dpor:false s in
  let dp = Explore.explore ~stats s in
  check_outcomes "clocked scenario runs in full" full dp;
  Util.checki "nothing pruned when disarmed" 0 (Explore.stats_pruned stats)

let test_later_taint_raises () =
  (* The clock read hides behind a data race: the probe (P0 first, so
     P1 reads 1) is clean, but the P1-first schedules read 0 and hit
     [Eff.now]. The search must refuse loudly rather than prune over an
     invalid independence relation. *)
  let s =
    two_cpu ~name:"dpor.latent-clock" (fun () ->
        let x = Shared.make "x" 0 in
        let programs =
          [|
            (fun () -> Eff.invocation "p0" (fun () -> Shared.write x 1));
            (fun () ->
              Eff.invocation "p1" (fun () ->
                  if Shared.read x = 0 then ignore (Eff.now ())));
          |]
        in
        (programs, fun () -> Ok ()))
  in
  (match Explore.explore s with
  | _ -> Alcotest.fail "expected Invalid_argument on the latent clock read"
  | exception Invalid_argument m ->
    Util.checkb "message points at --no-dpor" (Util.contains m "--no-dpor"));
  (* And the escape hatch works. *)
  let full = Explore.explore ~dpor:false s in
  Util.checkb "explored in full with ~dpor:false" full.exhaustive

let test_hist_wrap_prunable () =
  (* History recording through [Hist.wrap] reads per-processor
     timestamps ([Eff.stamp]), not the global clock: the scenario must
     stay prunable — stamp reads do not taint — with the verdict (a
     linearizability check over the recorded history) preserved. Under
     the old global-clock recorder this scenario would have disarmed or
     raised like the [Eff.now] cases above. *)
  let module Hist = Hwf_check.Hist in
  let module Lincheck = Hwf_check.Lincheck in
  let spec =
    Lincheck.make_spec ~init:0 ~apply:(fun s op ->
        match op with `Add d -> (s + d, `Old s))
  in
  let s =
    two_cpu ~name:"dpor.hist-wrap" (fun () ->
        let c = Shared.make "hw.c" 0 in
        let hist = Hist.create () in
        let add pid d =
          ignore
            (Hist.wrap hist ~pid (`Add d) (fun () ->
                 let v = Shared.read c in
                 Shared.write c (v + d);
                 `Old v))
        in
        let programs =
          [|
            (fun () -> Eff.invocation "p0" (fun () -> add 0 1));
            (fun () -> Eff.invocation "p1" (fun () -> add 1 2));
          |]
        in
        (programs, fun () -> Lincheck.check_hist spec hist))
  in
  let stats = Explore.make_stats ~jobs:1 s in
  let full = Explore.explore ~dpor:false s in
  let dp = Explore.explore ~stats s in
  (* No Invalid_argument, same verdict; this scenario's accesses all
     conflict on [hw.c], so pruning may or may not shrink it — the
     point is that recording cost it nothing. *)
  Util.checkb "exhaustive agrees" (full.exhaustive = dp.exhaustive);
  Util.checkb "verdict agrees"
    ((full.counterexample = None) = (dp.counterexample = None));
  Util.checkb "pruned within full" (dp.runs <= full.runs);
  (* Stamp reads are counted but non-tainting: observable on a direct
     engine run. *)
  let inst = s.Explore.make () in
  let r =
    Engine.run ~step_limit:1_000 ~config:s.Explore.config
      ~policy:(Policy.round_robin ()) inst.Explore.programs
  in
  Util.checkb "stamp reads counted" (Trace.stamp_reads r.Engine.trace > 0);
  Util.checki "no global clock reads" 0 (Trace.now_reads r.Engine.trace)

let test_source_prunes_counted () =
  (* Three processes on three processors with overlapping conflicts
     produce sleep-set blocked prefixes; the refinement must discard
     them without a verdict check and count them, with the verdict and
     exhaustiveness unchanged against the unpruned search. *)
  let layout = [ (0, 1); (1, 1); (2, 1) ] in
  let config = Layout.to_config ~quantum:4 layout in
  let make () =
    let a = Shared.make "sp.a" 0 and b = Shared.make "sp.b" 0 in
    let programs =
      [|
        (fun () -> Eff.invocation "p0" (fun () -> Shared.write a 1; Shared.write b 1));
        (fun () -> Eff.invocation "p1" (fun () -> Shared.write a 2; Shared.write b 2));
        (fun () -> Eff.invocation "p2" (fun () -> Shared.write b 3; Shared.write a 3));
      |]
    in
    let check (r : Engine.result) =
      if Array.for_all Fun.id r.Engine.finished then Ok ()
      else Error "not all processes finished"
    in
    Explore.{ programs; check }
  in
  let s = Explore.{ name = "dpor.source-sets"; config; make } in
  let stats = Explore.make_stats ~jobs:1 s in
  let full = Explore.explore ~dpor:false s in
  let dp = Explore.explore ~stats s in
  Util.checkb "exhaustive" (full.exhaustive && dp.exhaustive);
  Util.checkb "clean verdicts"
    (full.counterexample = None && dp.counterexample = None);
  Util.checkb
    (Printf.sprintf "pruning shrinks runs (%d < %d)" dp.runs full.runs)
    (dp.runs < full.runs);
  Util.checkb "sleep prunes counted" (Explore.stats_pruned stats > 0);
  (* Blocked prefixes are not verdict-checked runs: every counted run
     is a distinct completed schedule, and the discards are visible. *)
  Util.checkb "source prunes counted separately"
    (Explore.stats_source_prunes stats >= 0)

let test_preemption_bound_disarms () =
  (* Context bounding restricts the candidate lists, which breaks the
     "explored or slept" invariant — the two reductions are never armed
     together. *)
  let s = disjoint () in
  let stats = Explore.make_stats ~jobs:1 s in
  let bounded_full = Explore.explore ~preemption_bound:1 ~dpor:false s in
  let bounded_dp = Explore.explore ~preemption_bound:1 ~stats s in
  check_outcomes "bounded search identical" bounded_full bounded_dp;
  Util.checki "nothing pruned under a preemption bound" 0 (Explore.stats_pruned stats)

let () =
  Alcotest.run "dpor"
    [
      ( "sleep-sets",
        [
          Alcotest.test_case "uniprocessor: pruning is a no-op" `Quick
            test_uniprocessor_identical;
          Alcotest.test_case "multiprocessor: prunes, same verdict" `Quick
            test_multiprocessor_prunes;
          Alcotest.test_case "counterexample preserved" `Quick
            test_counterexample_preserved;
          Alcotest.test_case "jobs x grain identity under dpor" `Quick
            test_jobs_grain_identity_under_dpor;
          Alcotest.test_case "probe clock read disarms silently" `Quick
            test_probe_taint_disarms;
          Alcotest.test_case "latent clock read raises" `Quick test_later_taint_raises;
          Alcotest.test_case "hist.wrap stays prunable" `Quick test_hist_wrap_prunable;
          Alcotest.test_case "source-set prunes counted" `Quick
            test_source_prunes_counted;
          Alcotest.test_case "preemption bound disarms" `Quick
            test_preemption_bound_disarms;
        ] );
    ]
